(* Native socket server: the real-machine twin of the simulated KVS.

   One listener (TCP or Unix-domain) feeds share-nothing shards (key mod
   nshards); every shard is a full Backend (slab + index) driven by the
   very same per-operation code as the simulator — [Rtc.worker_body] for
   the run-to-completion systems, and a CR/MR fiber pair mirroring
   [Mutps]'s staged split — running on {!Fiber}s over the {!Sched}
   work-stealing pool instead of simulated threads.  The memory
   environments are free-running ([Env.make_freerun]): charging becomes a
   no-op and no DES effect is ever performed, so the shared KVS layers
   execute natively unchanged.

   Wire protocol: {!Resp} (GET/SET/DEL/PING).  Per-connection response
   order equals request order: every parsed command takes a ticket, and a
   sequencer releases encoded replies in ticket order no matter which
   shard fiber completes them.

   Threading picture (D rules): the poller fiber owns all socket state
   and each connection's read side; shard fibers own their backend; the
   only cross-fiber state is the per-shard rx queue ([rx_lock]), the
   connection table ([conns_lock]) and each connection's reply sequencer
   ([out_lock]) — three distinct single-level locks, never nested. *)

module Env = Mutps_mem.Env
module Simthread = Mutps_sim.Simthread
module Request = Mutps_queue.Request
module Message = Mutps_net.Message
module Transport = Mutps_net.Transport
module Item = Mutps_store.Item
module Index = Mutps_index.Index_intf
module Backend = Mutps_kvs.Backend
module Config = Mutps_kvs.Config
module Exec = Mutps_kvs.Exec
module Rtc = Mutps_kvs.Rtc
module Fwd = Mutps_kvs.Fwd

type mode = Rtc_pool of Exec.lock_mode | Split

type listen = Unix_path of string | Tcp of string * int

type config = {
  mode : mode;
  listen : listen;
  domains : int;  (** scheduler worker domains *)
  shards : int;  (** share-nothing backend shards (key mod shards) *)
  keyspace : int;  (** keys preloaded before serving (0 = start empty) *)
  value_size : int;  (** preloaded value bytes *)
  hot_cap : int;  (** CR hot-cache capacity per shard (Split mode) *)
  duration_s : float option;  (** stop after this long; [None] = until {!handle} stop *)
  log : string -> unit;
      (** lifecycle lines; called only from the domain invoking
          {!run}/{!launch}, so a DLS-bound sink (e.g. the experiment
          harness's) sees every message *)
}

let default_config =
  {
    mode = Split;
    listen = Unix_path "/tmp/mutps.sock";
    domains = 2;
    shards = 1;
    keyspace = 0;
    value_size = 64;
    hot_cap = 1024;
    duration_s = None;
    log = ignore;
  }

type summary = {
  responded : int;  (** replies posted by the KVS layers *)
  cr_hits : int;  (** answered at the CR layer (Split mode) *)
  forwarded : int;  (** forwarded CR->MR (Split mode) *)
  mr_ops : int;
  steals : int;  (** scheduler cross-worker steals *)
  conns : int;  (** connections accepted *)
}

(* ------------------------------------------------------------------ *)
(* Native transport: the same first-class interface the simulated      *)
(* transports implement, over an in-process handoff queue.  Addresses  *)
(* are synthetic — the free-running Env never dereferences them.       *)
(* ------------------------------------------------------------------ *)

type native_tr = {
  rx_lock : Mutex.t;  (* guards rx, by_seq, next_seq *)
  rx : (int * Message.t) Queue.t;
  by_seq : (int, Message.t) Hashtbl.t;
  mutable next_seq : int;
  resp_top : int Atomic.t;
  inflight : int Atomic.t;
  responded : int Atomic.t;
  mutable on_resp : Message.t -> bytes option -> unit;
}

let slot_stride = 4096

let make_transport () =
  let nt =
    {
      rx_lock = Mutex.create ();
      rx = Queue.create ();
      by_seq = Hashtbl.create 256;
      next_seq = 0;
      resp_top = Atomic.make 0x4000_0000;
      inflight = Atomic.make 0;
      responded = Atomic.make 0;
      on_resp = (fun _ _ -> ());
    }
  in
  let tr =
    {
      Transport.name = "native";
      deliver =
        (fun msg ->
          Mutex.lock nt.rx_lock;
          let seq = nt.next_seq in
          nt.next_seq <- seq + 1;
          Queue.push (seq, msg) nt.rx;
          Hashtbl.replace nt.by_seq seq msg;
          Mutex.unlock nt.rx_lock;
          Atomic.incr nt.inflight);
      poll =
        (fun _env ~worker:_ ->
          Mutex.lock nt.rx_lock;
          let m = Queue.take_opt nt.rx in
          Mutex.unlock nt.rx_lock;
          m);
      slot_addr = (fun seq -> 0x1000_0000 + (seq * slot_stride));
      slot_len = (fun _ -> slot_stride);
      resp_alloc =
        (fun ~worker:_ ~bytes -> Atomic.fetch_and_add nt.resp_top (max 64 bytes));
      post_response =
        (fun _env ~seq ~resp_addr:_ ~bytes:_ ~value ->
          Mutex.lock nt.rx_lock;
          let msg = Hashtbl.find_opt nt.by_seq seq in
          Hashtbl.remove nt.by_seq seq;
          Mutex.unlock nt.rx_lock;
          match msg with
          | Some msg ->
            Atomic.decr nt.inflight;
            Atomic.incr nt.responded;
            nt.on_resp msg value
          | None -> invalid_arg "native transport: unknown response seq");
      set_on_response = (fun f -> nt.on_resp <- f);
      workers = (fun () -> 1);
      set_workers = (fun _ -> ());
      reconfig_in_progress = (fun () -> false);
      outstanding = (fun () -> Atomic.get nt.inflight);
    }
  in
  (nt, tr)

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type shard = {
  sid : int; [@warning "-69"]  (* diagnostic identity *)
  backend : Backend.t;
  nt : native_tr;
  tr : Transport.t;
  stop : bool Atomic.t;  (* the server-wide stop flag, shared *)
  fwd_q : Fwd.t Deque.t;  (* CR -> MR (Split mode) *)
  comp_q : Fwd.t Deque.t;  (* MR -> CR completions *)
  mutable cr_hits : int;  (* CR-fiber-only *)
  mutable forwarded : int;  (* CR-fiber-only *)
  mutable mr_ops : int;  (* MR-fiber-only *)
}

let shard_of_key ~shards key =
  Int64.to_int (Int64.rem (Int64.logand key Int64.max_int) (Int64.of_int shards))

let make_shard cfg ~stop sid =
  let kcfg =
    Config.default ~cores:2
      ~capacity:(max 64 ((cfg.keyspace / max 1 cfg.shards) + 64))
      ()
  in
  let backend = Backend.create kcfg in
  if cfg.keyspace > 0 then
    Backend.populate backend
      ~owned:(fun key -> shard_of_key ~shards:cfg.shards key = sid)
      ~keyspace:cfg.keyspace ~value_size:cfg.value_size;
  let nt, tr = make_transport () in
  {
    sid;
    backend;
    nt;
    tr;
    stop;
    fwd_q = Deque.create ();
    comp_q = Deque.create ();
    cr_hits = 0;
    forwarded = 0;
    mr_ops = 0;
  }

let check_stop shard = if Atomic.get shard.stop then raise Fiber.Stop

(* Free-running environment on a detached context: the shared KVS code
   charges into it, the charges are discarded, no DES effect fires. *)
let freerun_env shard ~core =
  let ctx = Simthread.detached ~name:"native" shard.backend.Backend.engine in
  Env.make_freerun ~ctx ~hier:shard.backend.Backend.hier ~core

(* --- run-to-completion shard: the simulator's own worker loop -------- *)

let native_substrate shard =
  {
    Rtc.make_env =
      (fun ctx ~core ->
        Env.make_freerun ~ctx ~hier:shard.backend.Backend.hier ~core);
    idle =
      (fun _ctx ->
        check_stop shard;
        Fiber.yield ());
    flush =
      (fun _ctx ->
        check_stop shard;
        Fiber.yield ());
  }

let rtc_fiber shard ~lock () =
  let stats = Rtc.make_stats () in
  let ctx = Simthread.detached ~name:"native-rtc" shard.backend.Backend.engine in
  Rtc.worker_body ~substrate:(native_substrate shard) shard.backend shard.tr
    ~lock ~worker:0 stats ctx

(* --- Split shard: CR/MR fiber pair (the native μTPS) ----------------- *)

type cr_state = {
  hot_cap : int;
  cache : (int64, bytes) Hashtbl.t;  (* key -> latest value *)
  evict : int64 Queue.t;  (* FIFO eviction order *)
  fwd_epoch : (int, int) Hashtbl.t;  (* GET seq -> put_epoch at forward *)
  mutable put_epoch : int;  (* bumped on every put/delete *)
  mutable stalled : Fwd.t option;  (* forward blocked on a full ring *)
}

let cache_insert cs key v =
  if cs.hot_cap > 0 then begin
    if not (Hashtbl.mem cs.cache key) then begin
      let budget = ref (Queue.length cs.evict) in
      while Hashtbl.length cs.cache >= cs.hot_cap && !budget > 0 do
        decr budget;
        match Queue.take_opt cs.evict with
        | Some old -> Hashtbl.remove cs.cache old
        | None -> budget := 0
      done;
      if Hashtbl.length cs.cache < cs.hot_cap then begin
        Queue.push key cs.evict;
        Hashtbl.replace cs.cache key v
      end
    end
    else Hashtbl.replace cs.cache key v
  end

let try_forward shard cs fwd =
  if Deque.push shard.fwd_q fwd then begin
    shard.forwarded <- shard.forwarded + 1;
    true
  end
  else begin
    cs.stalled <- Some fwd;
    false
  end

let cr_respond_hit shard env ~seq v =
  shard.cr_hits <- shard.cr_hits + 1;
  let bytes = Exec.ack_bytes + Bytes.length v in
  let resp_addr = shard.tr.Transport.resp_alloc ~worker:0 ~bytes in
  shard.tr.Transport.post_response env ~seq ~resp_addr ~bytes ~value:(Some v)

let cr_handle shard env cs ~seq (msg : Message.t) =
  let req = msg.Message.req in
  let key = req.Request.key in
  match req.Request.kind with
  | Request.Get -> (
    match Hashtbl.find_opt cs.cache key with
    | Some v -> cr_respond_hit shard env ~seq v
    | None ->
      Hashtbl.replace cs.fwd_epoch seq cs.put_epoch;
      ignore (try_forward shard cs (Fwd.make ~seq ~cr:0 ~msg ~prefix:[])))
  | Request.Put ->
    (* write-through: the cached copy tracks the latest value while the
       authoritative write still goes through the MR layer *)
    (match msg.Message.value with
    | Some v when Hashtbl.mem cs.cache key ->
      Hashtbl.replace cs.cache key (Bytes.copy v)
    | Some _ | None -> ());
    cs.put_epoch <- cs.put_epoch + 1;
    ignore (try_forward shard cs (Fwd.make ~seq ~cr:0 ~msg ~prefix:[]))
  | Request.Delete ->
    Hashtbl.remove cs.cache key;
    cs.put_epoch <- cs.put_epoch + 1;
    ignore (try_forward shard cs (Fwd.make ~seq ~cr:0 ~msg ~prefix:[]))
  | Request.Scan ->
    ignore (try_forward shard cs (Fwd.make ~seq ~cr:0 ~msg ~prefix:[]))

(* Reap MR completions and post their responses.  The commit orders the
   reap before the [resp_*] reads — the piggyback protocol's publication
   point (a free-running no-op natively, where the SPMC deque's own
   atomics provide the ordering). *)
let cr_reap shard env cs =
  Env.commit env;
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    match Deque.take shard.comp_q with
    | Some fwd ->
      progressed := true;
      let req = fwd.Fwd.msg.Message.req in
      (match (req.Request.kind, fwd.Fwd.resp_value) with
      | Request.Get, Some v -> (
        (* epoch-guarded fill: only cache a GET result no put/delete has
           possibly invalidated since it was forwarded *)
        match Hashtbl.find_opt cs.fwd_epoch fwd.Fwd.seq with
        | Some e when e = cs.put_epoch ->
          cache_insert cs req.Request.key v
        | Some _ | None -> ())
      | _ -> ());
      Hashtbl.remove cs.fwd_epoch fwd.Fwd.seq;
      shard.tr.Transport.post_response env ~seq:fwd.Fwd.seq
        ~resp_addr:fwd.Fwd.resp_addr ~bytes:fwd.Fwd.resp_bytes
        ~value:fwd.Fwd.resp_value
    | None -> continue := false
  done;
  !progressed

let cr_fiber (cfg : config) shard () =
  let env = freerun_env shard ~core:0 in
  let cs =
    {
      hot_cap = cfg.hot_cap;
      cache = Hashtbl.create (max 16 cfg.hot_cap);
      evict = Queue.create ();
      fwd_epoch = Hashtbl.create 64;
      put_epoch = 0;
      stalled = None;
    }
  in
  while true do
    check_stop shard;
    let progressed = cr_reap shard env cs in
    let progressed =
      match cs.stalled with
      | Some fwd ->
        (* backpressure: stop polling rx until the ring accepts it *)
        cs.stalled <- None;
        if try_forward shard cs fwd then true else progressed
      | None -> (
        match shard.tr.Transport.poll env ~worker:0 with
        | Some (seq, msg) ->
          cr_handle shard env cs ~seq msg;
          true
        | None -> progressed)
    in
    ignore progressed;
    Fiber.yield ()
  done

let mr_execute shard env (fwd : Fwd.t) =
  let index = shard.backend.Backend.index in
  let req = fwd.Fwd.msg.Message.req in
  let key = req.Request.key in
  let ack () =
    fwd.Fwd.resp_addr <-
      shard.tr.Transport.resp_alloc ~worker:1 ~bytes:Exec.ack_bytes;
    fwd.Fwd.resp_bytes <- Exec.ack_bytes
  in
  match req.Request.kind with
  | Request.Get -> (
    match index.Index.lookup env key with
    | Some item ->
      let value = Item.read env item in
      let bytes = Exec.ack_bytes + Bytes.length value in
      fwd.Fwd.resp_addr <- shard.tr.Transport.resp_alloc ~worker:1 ~bytes;
      fwd.Fwd.resp_bytes <- bytes;
      fwd.Fwd.resp_value <- Some value
    | None -> ack ())
  | Request.Put ->
    let value =
      match fwd.Fwd.msg.Message.value with
      | Some v -> v
      | None -> invalid_arg "native MR: put without payload"
    in
    (match index.Index.lookup env key with
    | Some item -> Item.write_exclusive env item value shard.backend.Backend.slab
    | None ->
      let item = Item.create shard.backend.Backend.slab ~value in
      index.Index.insert env key item);
    ack ()
  | Request.Delete ->
    ignore (index.Index.remove env key);
    ack ()
  | Request.Scan ->
    (* not served over the wire; ack so the connection is never wedged *)
    ack ()

let mr_fiber shard () =
  let env = freerun_env shard ~core:1 in
  while true do
    check_stop shard;
    (match Deque.take shard.fwd_q with
    | Some fwd ->
      mr_execute shard env fwd;
      while not (Deque.push shard.comp_q fwd) do
        check_stop shard;
        Fiber.yield ()
      done;
      shard.mr_ops <- shard.mr_ops + 1
    | None -> ());
    Fiber.yield ()
  done

(* ------------------------------------------------------------------ *)
(* Connections and the socket poller                                   *)
(* ------------------------------------------------------------------ *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  mutable rbuf : bytes;  (* poller-only read accumulation *)
  mutable rlen : int;
  mutable tickets : int;  (* poller-only: next request ticket *)
  out_lock : Mutex.t;  (* guards pending, next_out, obuf *)
  pending : (int, Resp.reply) Hashtbl.t;
  mutable next_out : int;
  obuf : Buffer.t;  (* in-order encoded replies awaiting the socket *)
  mutable wpend : string;  (* poller-only write staging *)
  mutable woff : int;
  mutable closing : bool;  (* close once every reply has been flushed *)
}

(* Release replies in ticket order: a completion may land out of order
   (different shards), so park it in [pending] and drain the prefix. *)
let conn_complete conn ~ticket reply =
  Mutex.lock conn.out_lock;
  Hashtbl.replace conn.pending ticket reply;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt conn.pending conn.next_out with
    | Some r ->
      Hashtbl.remove conn.pending conn.next_out;
      conn.next_out <- conn.next_out + 1;
      Resp.encode_reply conn.obuf r
    | None -> continue := false
  done;
  Mutex.unlock conn.out_lock

type state = {
  cfg : config;
  shards : shard array;
  sched : Sched.t;
  stop : bool Atomic.t;
  lfd : Unix.file_descr;
  conns_lock : Mutex.t;  (* guards the completion-lookup table only *)
  conns : (int, conn) Hashtbl.t;
  mutable accepted : int;  (* poller-only *)
}

let complete_by_id st ~cid ~ticket reply =
  Mutex.lock st.conns_lock;
  let conn = Hashtbl.find_opt st.conns cid in
  Mutex.unlock st.conns_lock;
  match conn with
  | Some conn -> conn_complete conn ~ticket reply
  | None -> ()  (* connection closed with replies in flight *)

(* Dispatch one parsed command: route KVS ops to their shard's transport
   (the reply arrives through the shard's response callback), answer
   PING inline through the same sequencer. *)
let dispatch st conn cmd =
  let ticket = conn.tickets in
  conn.tickets <- ticket + 1;
  let send req value =
    let shard =
      st.shards.(shard_of_key ~shards:(Array.length st.shards)
                   req.Request.key)
    in
    shard.tr.Transport.deliver
      {
        Message.id = ticket;
        client = conn.cid;
        sent_at = 0;
        target = -1;
        req;
        value;
      }
  in
  match cmd with
  | Resp.Ping -> conn_complete conn ~ticket (Resp.Ok_simple "PONG")
  | Resp.Get key -> send (Request.get ~key ~buf:0) None
  | Resp.Del key -> send (Request.delete ~key ~buf:0) None
  | Resp.Set (key, v) ->
    if Bytes.length v > Request.max_size then begin
      conn_complete conn ~ticket (Resp.Error "value too large");
      conn.closing <- true
    end
    else send (Request.put ~key ~size:(Bytes.length v) ~buf:0) (Some v)

let conn_parse st conn =
  let continue = ref true in
  while !continue && not conn.closing do
    match Resp.parse_command conn.rbuf ~len:conn.rlen with
    | `Need_more -> continue := false
    | `Bad reason ->
      let ticket = conn.tickets in
      conn.tickets <- ticket + 1;
      conn_complete conn ~ticket (Resp.Error reason);
      conn.closing <- true
    | `Ok (cmd, consumed) ->
      Bytes.blit conn.rbuf consumed conn.rbuf 0 (conn.rlen - consumed);
      conn.rlen <- conn.rlen - consumed;
      dispatch st conn cmd
  done

let read_chunk = 4096

let conn_read st conn =
  if Bytes.length conn.rbuf - conn.rlen < read_chunk then begin
    let bigger = Bytes.create (2 * Bytes.length conn.rbuf + read_chunk) in
    Bytes.blit conn.rbuf 0 bigger 0 conn.rlen;
    conn.rbuf <- bigger
  end;
  match Unix.read conn.fd conn.rbuf conn.rlen read_chunk with
  | 0 -> conn.closing <- true  (* peer shutdown; flush replies then close *)
  | n ->
    conn.rlen <- conn.rlen + n;
    conn_parse st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()

(* Move sequenced replies to the socket; true while the write side still
   has (or may get) bytes to emit. *)
let conn_flush conn =
  if conn.woff >= String.length conn.wpend then begin
    Mutex.lock conn.out_lock;
    if Buffer.length conn.obuf > 0 then begin
      conn.wpend <- Buffer.contents conn.obuf;
      conn.woff <- 0;
      Buffer.clear conn.obuf
    end;
    Mutex.unlock conn.out_lock
  end;
  let len = String.length conn.wpend - conn.woff in
  if len > 0 then begin
    match Unix.write_substring conn.fd conn.wpend conn.woff len with
    | n -> conn.woff <- conn.woff + n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  end

(* A closing connection drains once every issued ticket has its reply
   encoded and written. *)
let conn_drained conn =
  conn.woff >= String.length conn.wpend
  &&
  (Mutex.lock conn.out_lock;
   let d = conn.next_out = conn.tickets && Buffer.length conn.obuf = 0 in
   Mutex.unlock conn.out_lock;
   d)

let close_conn st conn =
  Mutex.lock st.conns_lock;
  Hashtbl.remove st.conns conn.cid;
  Mutex.unlock st.conns_lock;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let accept_conns st live =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true st.lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let conn =
        {
          cid = st.accepted;
          fd;
          rbuf = Bytes.create read_chunk;
          rlen = 0;
          tickets = 0;
          out_lock = Mutex.create ();
          pending = Hashtbl.create 16;
          next_out = 0;
          obuf = Buffer.create 256;
          wpend = "";
          woff = 0;
          closing = false;
        }
      in
      st.accepted <- st.accepted + 1;
      Mutex.lock st.conns_lock;
      Hashtbl.replace st.conns conn.cid conn;
      Mutex.unlock st.conns_lock;
      live := conn :: !live
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> continue := false
  done

(* The poller fiber: owns the listener and every connection's socket I/O.
   Purely polling (accept/read/write are non-blocking, then yield), like
   the shard fibers — the whole server is a busy-poll runtime. *)
let poller_fiber st () =
  let deadline_ns =
    Option.map
      (fun s -> Clock.now_ns () + int_of_float (s *. 1e9))
      st.cfg.duration_s
  in
  let live = ref [] in
  let finished = ref false in
  while not !finished do
    (match deadline_ns with
    | Some d when Clock.now_ns () >= d -> Atomic.set st.stop true
    | Some _ | None -> ());
    if Atomic.get st.stop then begin
      List.iter (fun c -> close_conn st c) !live;
      (try Unix.close st.lfd with Unix.Unix_error _ -> ());
      (match st.cfg.listen with
      | Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
      | Tcp _ -> ());
      finished := true
    end
    else begin
      accept_conns st live;
      List.iter
        (fun conn ->
          if not conn.closing then conn_read st conn;
          conn_flush conn)
        !live;
      let closed, kept =
        List.partition (fun c -> c.closing && conn_drained c) !live
      in
      List.iter (fun c -> close_conn st c) closed;
      live := kept;
      Fiber.yield ()
    end
  done;
  raise Fiber.Stop

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let listen_socket cfg =
  match cfg.listen with
  | Unix_path path ->
    (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd

let listen_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let prepare (cfg : config) =
  if cfg.shards < 1 then invalid_arg "Server: shards < 1";
  if cfg.domains < 1 then invalid_arg "Server: domains < 1";
  let stop = Atomic.make false in
  let shards = Array.init cfg.shards (make_shard cfg ~stop) in
  let lfd = listen_socket cfg in
  let st =
    {
      cfg;
      shards;
      sched = Sched.create ~workers:cfg.domains ();
      stop;
      lfd;
      conns_lock = Mutex.create ();
      conns = Hashtbl.create 64;
      accepted = 0;
    }
  in
  Array.iter
    (fun shard ->
      shard.tr.Transport.set_on_response (fun (msg : Message.t) value ->
          complete_by_id st ~cid:msg.Message.client ~ticket:msg.Message.id
            (Resp.reply_for_op msg.Message.req.Request.kind value)))
    shards;
  Array.iter
    (fun shard ->
      match cfg.mode with
      | Rtc_pool lock -> Sched.spawn st.sched (rtc_fiber shard ~lock)
      | Split ->
        Sched.spawn st.sched (cr_fiber cfg shard);
        Sched.spawn st.sched (mr_fiber shard))
    shards;
  Sched.spawn st.sched (poller_fiber st);
  cfg.log
    (Printf.sprintf "native server: %s, %d shard(s), %d domain(s), %s"
       (match cfg.mode with
       | Rtc_pool Exec.Locked -> "basekv (run-to-completion, locked)"
       | Rtc_pool Exec.Exclusive -> "erpckv (run-to-completion, exclusive)"
       | Split -> "uTPS (CR/MR split)")
       cfg.shards cfg.domains
       (listen_to_string cfg.listen));
  st

let summarize st =
  let responded = ref 0 and cr_hits = ref 0 and forwarded = ref 0 in
  let mr_ops = ref 0 in
  Array.iter
    (fun s ->
      responded := !responded + Atomic.get s.nt.responded;
      cr_hits := !cr_hits + s.cr_hits;
      forwarded := !forwarded + s.forwarded;
      mr_ops := !mr_ops + s.mr_ops)
    st.shards;
  {
    responded = !responded;
    cr_hits = !cr_hits;
    forwarded = !forwarded;
    mr_ops = !mr_ops;
    steals = Sched.steals st.sched;
    conns = st.accepted;
  }

let serve st =
  Sched.run st.sched;
  summarize st

let run cfg = serve (prepare cfg)

type handle = { state : state; domain : summary Domain.t }

let launch cfg =
  let st = prepare cfg in
  { state = st; domain = Domain.spawn (fun () -> serve st) }

let stop handle = Atomic.set handle.state.stop true
let wait handle = Domain.join handle.domain
