(* Minimal RESP-like wire protocol for the native server.

   Requests are RESP arrays of bulk strings:
     *2\r\n$3\r\nGET\r\n$2\r\n42\r\n
   Commands: GET key | SET key value | DEL key | PING.  Keys are decimal
   int64 strings (the simulated KVS keyspace is int64).

   Replies:
     GET hit   $<len>\r\n<bytes>\r\n
     GET miss  $-1\r\n
     SET/DEL   +OK\r\n
     PING      +PONG\r\n
     error     -ERR <reason>\r\n

   The parsers are incremental over a growing buffer: [parse_command] /
   [parse_reply] return [`Need_more] until a full frame is present, so
   the server and loadgen can feed raw reads straight in. *)

type command =
  | Get of int64
  | Set of int64 * bytes
  | Del of int64
  | Ping

type reply =
  | Value of bytes
  | Nil
  | Ok_simple of string  (* OK, PONG *)
  | Error of string

let crlf = "\r\n"

(* --- encoding ------------------------------------------------------- *)

let encode_bulk buf s =
  Buffer.add_char buf '$';
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_string buf crlf;
  Buffer.add_string buf s;
  Buffer.add_string buf crlf

let encode_command buf cmd =
  let parts =
    match cmd with
    | Get key -> [ "GET"; Int64.to_string key ]
    | Set (key, value) -> [ "SET"; Int64.to_string key; Bytes.to_string value ]
    | Del key -> [ "DEL"; Int64.to_string key ]
    | Ping -> [ "PING" ]
  in
  Buffer.add_char buf '*';
  Buffer.add_string buf (string_of_int (List.length parts));
  Buffer.add_string buf crlf;
  List.iter (encode_bulk buf) parts

let encode_reply buf reply =
  match reply with
  | Value v ->
    Buffer.add_char buf '$';
    Buffer.add_string buf (string_of_int (Bytes.length v));
    Buffer.add_string buf crlf;
    Buffer.add_bytes buf v;
    Buffer.add_string buf crlf
  | Nil -> Buffer.add_string buf "$-1\r\n"
  | Ok_simple s ->
    Buffer.add_char buf '+';
    Buffer.add_string buf s;
    Buffer.add_string buf crlf
  | Error msg ->
    Buffer.add_string buf "-ERR ";
    Buffer.add_string buf msg;
    Buffer.add_string buf crlf

let reply_to_string reply =
  let buf = Buffer.create 64 in
  encode_reply buf reply;
  Buffer.contents buf

(* What the KVS answers for each operation — shared with the
   sim-vs-native equivalence test, which synthesizes the simulator side's
   byte stream through this same function. *)
let reply_for_op (kind : Mutps_queue.Request.kind) (value : bytes option) =
  match kind, value with
  | Get, Some v -> Value v
  | Get, None -> Nil
  | (Put | Delete), _ -> Ok_simple "OK"
  | Scan, _ -> Error "SCAN unsupported on the wire"

(* --- incremental parsing -------------------------------------------- *)

type 'a parse = [ `Ok of 'a * int | `Need_more | `Bad of string ]

(* Find "\r\n" starting at [pos]; [None] if incomplete. *)
let find_crlf s ~pos ~len =
  let i = ref pos in
  let found = ref (-1) in
  while !found < 0 && !i + 1 < len do
    if Bytes.get s !i = '\r' && Bytes.get s (!i + 1) = '\n' then found := !i
    else incr i
  done;
  if !found < 0 then None else Some !found

let parse_int_line s ~pos ~len : (int * int) parse =
  match find_crlf s ~pos ~len with
  | None -> `Need_more
  | Some e -> (
    match int_of_string_opt (Bytes.sub_string s pos (e - pos)) with
    | Some n -> `Ok ((n, e + 2), e + 2)
    | None -> `Bad "expected integer")

(* $<n>\r\n<payload>\r\n  at [pos]; yields payload and next offset. *)
let parse_bulk s ~pos ~len : (string * int) parse =
  if pos >= len then `Need_more
  else if Bytes.get s pos <> '$' then `Bad "expected bulk string"
  else
    match parse_int_line s ~pos:(pos + 1) ~len with
    | (`Need_more | `Bad _) as r -> r
    | `Ok ((n, body), _) ->
      if n < 0 then `Bad "negative bulk length"
      else if body + n + 2 > len then `Need_more
      else if Bytes.get s (body + n) <> '\r' || Bytes.get s (body + n + 1) <> '\n'
      then `Bad "bulk string missing terminator"
      else `Ok ((Bytes.sub_string s body n, body + n + 2), body + n + 2)

(* One command frame starting at offset 0 of [s] (first [len] bytes).
   [`Ok (cmd, consumed)] lets the caller shift its buffer. *)
let parse_command s ~len : command parse =
  if len = 0 then `Need_more
  else if Bytes.get s 0 <> '*' then `Bad "expected array"
  else
    match parse_int_line s ~pos:1 ~len with
    | (`Need_more | `Bad _) as r -> r
    | `Ok ((argc, pos0), _) ->
      if argc < 1 || argc > 3 then `Bad "wrong number of arguments"
      else begin
        let args = Array.make argc "" in
        let rec collect i pos : command parse =
          if i = argc then finish pos
          else
            match parse_bulk s ~pos ~len with
            | (`Need_more | `Bad _) as r -> r
            | `Ok ((a, next), _) ->
              args.(i) <- a;
              collect (i + 1) next
        and key_of i : (int64, string) result =
          match Int64.of_string_opt args.(i) with
          | Some k -> Result.Ok k
          | None -> Result.Error "key must be a decimal integer"
        and finish consumed : command parse =
          let cmd = String.uppercase_ascii args.(0) in
          match cmd, argc with
          | "PING", 1 -> `Ok (Ping, consumed)
          | "GET", 2 -> (
            match key_of 1 with
            | Result.Ok k -> `Ok (Get k, consumed)
            | Result.Error m -> `Bad m)
          | "DEL", 2 -> (
            match key_of 1 with
            | Result.Ok k -> `Ok (Del k, consumed)
            | Result.Error m -> `Bad m)
          | "SET", 3 -> (
            match key_of 1 with
            | Result.Ok k -> `Ok (Set (k, Bytes.of_string args.(2)), consumed)
            | Result.Error m -> `Bad m)
          | ("PING" | "GET" | "DEL" | "SET"), _ ->
            `Bad ("wrong number of arguments for " ^ cmd)
          | _ -> `Bad ("unknown command " ^ cmd)
        in
        collect 0 pos0
      end

(* One reply frame starting at offset 0 (loadgen side). *)
let parse_reply s ~len : reply parse =
  if len = 0 then `Need_more
  else
    match Bytes.get s 0 with
    | '+' -> (
      match find_crlf s ~pos:1 ~len with
      | None -> `Need_more
      | Some e -> `Ok (Ok_simple (Bytes.sub_string s 1 (e - 1)), e + 2))
    | '-' -> (
      match find_crlf s ~pos:1 ~len with
      | None -> `Need_more
      | Some e ->
        let m = Bytes.sub_string s 1 (e - 1) in
        (* strip the class marker the encoder prepends, so
           encode/parse/encode is stable *)
        let m =
          if String.length m >= 4 && String.sub m 0 4 = "ERR " then
            String.sub m 4 (String.length m - 4)
          else m
        in
        `Ok (Error m, e + 2))
    | '$' -> (
      match parse_int_line s ~pos:1 ~len with
      | `Need_more -> `Need_more
      | `Bad m -> `Bad m
      | `Ok ((n, body), _) ->
        if n = -1 then `Ok (Nil, body)
        else if n < -1 then `Bad "negative bulk length"
        else if body + n + 2 > len then `Need_more
        else `Ok (Value (Bytes.sub s body n), body + n + 2))
    | c -> `Bad (Printf.sprintf "unexpected reply byte %C" c)
