(* Closed-loop load generator for the native server.

   Each connection keeps exactly one request outstanding: it draws the
   next operation from its own deterministic {!Mutps_workload.Opgen}
   stream, sends it, and measures the wall-clock time to the full reply.
   Connections are multiplexed with [Unix.select], so one generator
   thread drives many closed loops — the native analogue of the
   simulator's {!Mutps_net.Client} pool.

   Put payloads come from [Client.payload], the same deterministic
   bytes-for-key function the simulated clients use, so a GET's reply is
   checkable and the sim-vs-native equivalence test can compare byte
   streams exactly. *)

module Opgen = Mutps_workload.Opgen
module Stats = Mutps_sim.Stats
module Request = Mutps_queue.Request

type config = {
  connect : Server.listen;
  conns : int;
  ops : int;  (** total operations across every connection *)
  spec : Opgen.spec;
  seed : int;
}

type result = {
  completed : int;
  errors : int;  (** [-ERR] replies *)
  get_hits : int;
  get_misses : int;
  elapsed_ns : int;
  hist : Stats.Hist.t;  (** per-op latency in nanoseconds *)
}

type lg_conn = {
  fd : Unix.file_descr;
  gen : Opgen.t;
  mutable rbuf : bytes;
  mutable rlen : int;
  mutable sent_ns : int;  (* when the outstanding request went out *)
  mutable outstanding : bool;
}

let connect_fd (target : Server.listen) =
  match target with
  | Server.Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Server.Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd

(* Scans are not on the wire protocol; a spec that asks for one degrades
   to a GET of the scan's start key. *)
let command_of_op (op : Opgen.op) =
  match op.Opgen.kind with
  | Request.Get | Request.Scan -> Resp.Get op.Opgen.key
  | Request.Put ->
    Resp.Set
      (op.Opgen.key,
       Mutps_net.Client.payload ~key:op.Opgen.key ~size:(max 1 op.Opgen.size))
  | Request.Delete -> Resp.Del op.Opgen.key

let send_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send_next c =
  let buf = Buffer.create 64 in
  Resp.encode_command buf (command_of_op (Opgen.next c.gen));
  c.sent_ns <- Clock.now_ns ();
  c.outstanding <- true;
  send_all c.fd (Buffer.contents buf)

exception Protocol_error of string

let run cfg =
  if cfg.conns < 1 then invalid_arg "Loadgen: conns < 1";
  (* a server winding down mid-write must surface as EPIPE, not kill the
     process with SIGPIPE *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect ~finally:(fun () ->
      match prev_sigpipe with
      | Some h -> Sys.set_signal Sys.sigpipe h
      | None -> ())
  @@ fun () ->
  let nconns = min cfg.conns (max 1 cfg.ops) in
  let conns =
    Array.init nconns (fun i ->
        {
          fd = connect_fd cfg.connect;
          gen = Opgen.make cfg.spec ~seed:(cfg.seed + (1000 * i));
          rbuf = Bytes.create 4096;
          rlen = 0;
          sent_ns = 0;
          outstanding = false;
        })
  in
  let hist = Stats.Hist.create () in
  let completed = ref 0 and started = ref 0 in
  let errors = ref 0 and get_hits = ref 0 and get_misses = ref 0 in
  let t0 = Clock.now_ns () in
  Array.iter
    (fun c ->
      if !started < cfg.ops then begin
        incr started;
        send_next c
      end)
    conns;
  while !completed < !started do
    let watched =
      Array.to_list conns
      |> List.filter_map (fun c -> if c.outstanding then Some c.fd else None)
    in
    let readable, _, _ = Unix.select watched [] [] 1.0 in
    Array.iter
      (fun c ->
        if c.outstanding && List.mem c.fd readable then begin
          if Bytes.length c.rbuf - c.rlen < 4096 then begin
            let bigger = Bytes.create (2 * Bytes.length c.rbuf) in
            Bytes.blit c.rbuf 0 bigger 0 c.rlen;
            c.rbuf <- bigger
          end;
          (match Unix.read c.fd c.rbuf c.rlen 4096 with
          | 0 -> raise (Protocol_error "server closed the connection")
          | n -> c.rlen <- c.rlen + n
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ());
          match Resp.parse_reply c.rbuf ~len:c.rlen with
          | `Need_more -> ()
          | `Bad reason -> raise (Protocol_error reason)
          | `Ok (reply, consumed) ->
            Bytes.blit c.rbuf consumed c.rbuf 0 (c.rlen - consumed);
            c.rlen <- c.rlen - consumed;
            Stats.Hist.add hist (Clock.now_ns () - c.sent_ns);
            (match reply with
            | Resp.Value _ -> incr get_hits
            | Resp.Nil -> incr get_misses
            | Resp.Ok_simple _ -> ()
            | Resp.Error _ -> incr errors);
            incr completed;
            c.outstanding <- false;
            if !started < cfg.ops then begin
              incr started;
              send_next c
            end
        end)
      conns
  done;
  let elapsed_ns = Clock.now_ns () - t0 in
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  {
    completed = !completed;
    errors = !errors;
    get_hits = !get_hits;
    get_misses = !get_misses;
    elapsed_ns;
    hist;
  }

let ops_per_s r =
  if r.elapsed_ns = 0 then 0.0
  else float_of_int r.completed /. (float_of_int r.elapsed_ns /. 1e9)

let percentile_us r p = float_of_int (Stats.Hist.percentile r.hist p) /. 1000.0
