(** Slab allocator for KV items in the simulated address space.

    Size classes are powers of two from 16 bytes up; each class draws from
    one region of the layout and keeps a free list, so item addresses are
    stable, dense within a class, and reusable after {!free}. *)

type t

val create :
  Mutps_mem.Layout.t -> ?class_bytes:int -> ?expected_items:int -> unit -> t
(** [class_bytes] is the per-size-class region floor (default 1 GB of
    simulated space).  A class whose blocks cannot hold [expected_items]
    items within that floor gets a larger region ([expected_items] blocks
    plus 25% slack) when it is first used — paper-scale stores need this;
    simulated address space is otherwise cheap but bounded by the packed
    cache tags (32 GiB). *)

val alloc : t -> int -> int
(** [alloc t size] returns the simulated address of a block that fits
    [size] bytes; [size] must be positive. *)

val free : t -> addr:int -> size:int -> unit
(** Return a block allocated with the same [size]. *)

val class_of_size : int -> int
(** The rounded block size used for a payload of [size] bytes. *)

val live_blocks : t -> int
