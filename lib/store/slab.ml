module Layout = Mutps_mem.Layout

let min_class_shift = 4 (* 16 bytes *)
let max_class_shift = 24 (* 16 MB *)

let shift_of_size size =
  if size <= 0 then invalid_arg "Slab: size must be positive";
  let s = max (Mutps_sim.Bits.log2_ceil size) min_class_shift in
  if s > max_class_shift then invalid_arg "Slab: size too large";
  s

let class_of_size size = 1 lsl shift_of_size size

type klass = {
  region : Layout.region;
  block : int;
  mutable freelist : int list;
}

type t = {
  layout : Layout.t;
  class_bytes : int;
  expected_items : int;
  classes : klass option array;
  mutable live : int;
}

let create layout ?(class_bytes = 1 lsl 30) ?(expected_items = 0) () =
  {
    layout;
    class_bytes;
    expected_items;
    classes = Array.make (max_class_shift + 1) None;
    live = 0;
  }

let get_class t shift =
  match t.classes.(shift) with
  | Some k -> k
  | None ->
    let block = 1 lsl shift in
    (* regions are created lazily per class, so only classes actually
       allocated from consume simulated address space (which is bounded:
       the packed cache tags cover 32 GiB — see Cache).  Paper-scale
       stores overflow the 1 GiB default for their item class; size it
       for [expected_items] blocks plus 25% slack instead. *)
    let size = max t.class_bytes (t.expected_items * block / 4 * 5) in
    let k =
      {
        region =
          Layout.region t.layout
            ~name:(Printf.sprintf "slab-%dB" block)
            ~size;
        block;
        freelist = [];
      }
    in
    t.classes.(shift) <- Some k;
    k

let alloc t size =
  let shift = shift_of_size size in
  let k = get_class t shift in
  t.live <- t.live + 1;
  match k.freelist with
  | addr :: rest ->
    k.freelist <- rest;
    addr
  | [] -> Layout.alloc k.region ~align:(min k.block 64) k.block

let free t ~addr ~size =
  let shift = shift_of_size size in
  let k = get_class t shift in
  k.freelist <- addr :: k.freelist;
  t.live <- t.live - 1

let live_blocks t = t.live
