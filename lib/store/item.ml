module Env = Mutps_mem.Env

let header_bytes = 8
let spin_backoff_cycles = 25
let atomic_limit = 8

type t = {
  mutable addr : int;
  mutable value : bytes;
  mutable version : int; (* odd = write in progress *)
  mutable contended : int;
  mutable san_obj : int; (* sanitizer sync object; -1 until first use *)
  mutable san_lo : int; (* registered shadow range, to re-register on move *)
  mutable san_hi : int;
}

let create slab ~value =
  let addr = Slab.alloc slab (header_bytes + Bytes.length value) in
  {
    addr;
    value = Bytes.copy value;
    version = 0;
    contended = 0;
    san_obj = -1;
    san_lo = 0;
    san_hi = 0;
  }

let addr t = t.addr
let size t = Bytes.length t.value
let total_bytes t = header_bytes + Bytes.length t.value
(* uncharged introspection for stats and tests, not simulated reads *)
let version t = t.version [@@lint.allow "R3"]
let locked t = t.version land 1 = 1 [@@lint.allow "R3"]
let peek t = t.value
let contended_acquires t = t.contended

(* Sanitizer model of the seqlock: the item is a sync object — readers and
   writers acquire at entry (each retry, to inherit a concurrent holder's
   release) and release at exit, mirroring the ordering the version
   protocol provides on real hardware.  The header word is a sync range
   (its CAS traffic is synchronization, not data) and the payload bytes
   are protected by the object, so raw stores bypassing [write] flag a
   lockset violation.  Lazy registration: [create] has no [Env]. *)
let san_init env t =
  if Env.sanitizing env then begin
    if t.san_obj < 0 then
      t.san_obj <- Env.sync_obj env ("item@" ^ string_of_int t.addr);
    let lo = t.addr and hi = t.addr + total_bytes t in
    if t.san_lo <> lo || t.san_hi <> hi then begin
      if t.san_hi > t.san_lo then begin
        Env.sync_range env ~lo:t.san_lo ~hi:(t.san_lo + header_bytes) ~on:false;
        Env.unprotect env ~lo:(t.san_lo + header_bytes) ~hi:t.san_hi
      end;
      Env.sync_range env ~lo ~hi:(lo + header_bytes) ~on:true;
      Env.protect env ~obj:t.san_obj ~lo:(lo + header_bytes) ~hi;
      t.san_lo <- lo;
      t.san_hi <- hi
    end
  end

let rec read_loop env t =
  Env.commit env;
  Env.assert_committed env "Item.read";
  Env.acquire env t.san_obj;
  let v1 = t.version in
  if v1 land 1 = 1 then begin
    (* writer in progress: re-poll the header *)
    if Env.tracing env then
      Env.instant env ~name:"seqlock.read_bounce"
        ~arg:("item@" ^ string_of_int t.addr);
    Env.load env ~addr:t.addr ~size:header_bytes;
    Env.compute env spin_backoff_cycles;
    read_loop env t
  end
  else begin
    (* speculative until the version validates: a read the protocol
       retries was never observed, so only successful reads enter the
       sanitizer's shadow map *)
    let addr = t.addr and size = total_bytes t in
    Env.load_speculative env ~addr ~size;
    Env.commit env;
    if t.version <> v1 then begin
      if Env.tracing env then
        Env.instant env ~name:"seqlock.read_bounce"
          ~arg:("item@" ^ string_of_int t.addr);
      Env.compute env spin_backoff_cycles;
      read_loop env t
    end
    else begin
      Env.note_read env ~addr ~size;
      Bytes.copy t.value
    end
  end

let read env t =
  Env.tagged env "Item.read" @@ fun () ->
  san_init env t;
  let v = read_loop env t in
  Env.release env t.san_obj;
  v

let update_payload t value slab =
  let old_len = Bytes.length t.value and new_len = Bytes.length value in
  if Slab.class_of_size (header_bytes + old_len)
     <> Slab.class_of_size (header_bytes + new_len)
  then begin
    Slab.free slab ~addr:t.addr ~size:(header_bytes + old_len);
    t.addr <- Slab.alloc slab (header_bytes + new_len)
  end;
  t.value <- Bytes.copy value

let rec write_loop env t value slab =
  Env.commit env;
  Env.assert_committed env "Item.write";
  Env.acquire env t.san_obj;
  if t.version land 1 = 1 then begin
    (* spin on the held lock with CAS: every failed attempt dirties the
       header line, invalidating the holder's copy — the cacheline
       ping-pong that makes contended critical sections stretch (§2.2.2) *)
    t.contended <- t.contended + 1;
    if Env.tracing env then
      Env.instant env ~name:"seqlock.write_contend"
        ~arg:("item@" ^ string_of_int t.addr);
    Env.store env ~addr:t.addr ~size:header_bytes;
    Env.compute env spin_backoff_cycles;
    write_loop env t value slab
  end
  else if Bytes.length value <= atomic_limit && size t <= atomic_limit then begin
    (* 8-byte values: single atomic store of header+data (same line) —
       exclusive by hardware, a degenerate critical section for the
       lockset *)
    Env.lock env t.san_obj;
    Env.store env ~addr:t.addr ~size:(header_bytes + Bytes.length value);
    update_payload t value slab;
    t.version <- t.version + 2;
    (* the atomic store is its own release: unlock before the commit
       yields, or a reader dispatched in the commit window would see the
       even version without the happens-before edge *)
    san_init env t;
    Env.unlock env t.san_obj;
    Env.commit env
  end
  else begin
    (* acquire: the CAS dirties the header line immediately *)
    Env.store env ~addr:t.addr ~size:header_bytes;
    t.version <- t.version + 1;
    Env.lock env t.san_obj;
    (* committing between the phases lets concurrent failed CASes dirty
       the header line mid-critical-section, so the release genuinely pays
       for the ping-pong — contended holds stretch with the crowd *)
    Env.commit env;
    (* payload copy *)
    Env.store env ~addr:(t.addr + header_bytes) ~size:(Bytes.length value);
    Env.commit env;
    (* release store *)
    Env.store env ~addr:t.addr ~size:header_bytes;
    Env.commit env;
    update_payload t value slab;
    t.version <- t.version + 1;
    san_init env t;
    Env.unlock env t.san_obj
  end

let write env t value slab =
  Env.tagged env "Item.write" @@ fun () ->
  san_init env t;
  write_loop env t value slab

(* share-nothing path: the owning thread is the only writer, so the
   version read needs no commit to observe other threads (the
   interprocedural R3 pass proves every call site commit-dominated) *)
let write_exclusive env t value slab =
  Env.tagged env "Item.write_exclusive" @@ fun () ->
  san_init env t;
  Env.acquire env t.san_obj;
  if t.version land 1 = 1 then
    invalid_arg "Item.write_exclusive: item is locked";
  Env.lock env t.san_obj;
  Env.store env ~addr:t.addr ~size:(header_bytes + Bytes.length value);
  update_payload t value slab;
  t.version <- t.version + 2;
  san_init env t;
  Env.unlock env t.san_obj;
  Env.commit env
