module Env = Mutps_mem.Env

let header_bytes = 8
let spin_backoff_cycles = 25
let atomic_limit = 8

type t = {
  mutable addr : int;
  mutable value : bytes;
  mutable version : int; (* odd = write in progress *)
  mutable contended : int;
}

let create slab ~value =
  let addr = Slab.alloc slab (header_bytes + Bytes.length value) in
  { addr; value = Bytes.copy value; version = 0; contended = 0 }

let addr t = t.addr
let size t = Bytes.length t.value
let total_bytes t = header_bytes + Bytes.length t.value
(* uncharged introspection for stats and tests, not simulated reads *)
let version t = t.version [@@lint.allow "R3"]
let locked t = t.version land 1 = 1 [@@lint.allow "R3"]
let peek t = t.value
let contended_acquires t = t.contended

let rec read env t =
  Env.commit env;
  Env.assert_committed env "Item.read";
  let v1 = t.version in
  if v1 land 1 = 1 then begin
    (* writer in progress: re-poll the header *)
    Env.load env ~addr:t.addr ~size:header_bytes;
    Env.compute env spin_backoff_cycles;
    read env t
  end
  else begin
    Env.load env ~addr:t.addr ~size:(total_bytes t);
    Env.commit env;
    if t.version <> v1 then begin
      Env.compute env spin_backoff_cycles;
      read env t
    end
    else Bytes.copy t.value
  end

let update_payload t value slab =
  let old_len = Bytes.length t.value and new_len = Bytes.length value in
  if Slab.class_of_size (header_bytes + old_len)
     <> Slab.class_of_size (header_bytes + new_len)
  then begin
    Slab.free slab ~addr:t.addr ~size:(header_bytes + old_len);
    t.addr <- Slab.alloc slab (header_bytes + new_len)
  end;
  t.value <- Bytes.copy value

let rec write env t value slab =
  Env.commit env;
  Env.assert_committed env "Item.write";
  if t.version land 1 = 1 then begin
    (* spin on the held lock with CAS: every failed attempt dirties the
       header line, invalidating the holder's copy — the cacheline
       ping-pong that makes contended critical sections stretch (§2.2.2) *)
    t.contended <- t.contended + 1;
    Env.store env ~addr:t.addr ~size:header_bytes;
    Env.compute env spin_backoff_cycles;
    write env t value slab
  end
  else if Bytes.length value <= atomic_limit && size t <= atomic_limit then begin
    (* 8-byte values: single atomic store of header+data (same line) *)
    Env.store env ~addr:t.addr ~size:(header_bytes + Bytes.length value);
    update_payload t value slab;
    t.version <- t.version + 2;
    Env.commit env
  end
  else begin
    (* acquire: the CAS dirties the header line immediately *)
    Env.store env ~addr:t.addr ~size:header_bytes;
    t.version <- t.version + 1;
    (* committing between the phases lets concurrent failed CASes dirty
       the header line mid-critical-section, so the release genuinely pays
       for the ping-pong — contended holds stretch with the crowd *)
    Env.commit env;
    (* payload copy *)
    Env.store env ~addr:(t.addr + header_bytes) ~size:(Bytes.length value);
    Env.commit env;
    (* release store *)
    Env.store env ~addr:t.addr ~size:header_bytes;
    Env.commit env;
    update_payload t value slab;
    t.version <- t.version + 1
  end

(* share-nothing path: the owning thread is the only writer, so the
   version read needs no commit to observe other threads (R3 exempt) *)
let write_exclusive env t value slab =
  if t.version land 1 = 1 then
    invalid_arg "Item.write_exclusive: item is locked";
  Env.store env ~addr:t.addr ~size:(header_bytes + Bytes.length value);
  update_payload t value slab;
  t.version <- t.version + 2;
  Env.commit env
[@@lint.allow "R3"]
