module Rng = Mutps_sim.Rng

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

(* shared across domains (parallel experiment workers all build Zipf
   generators), so cache access is mutex-protected *)
let zeta_cache : (int * float, float) Hashtbl.t = Hashtbl.create 16
let zeta_lock = Mutex.create ()

let zeta n theta =
  Mutex.lock zeta_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock zeta_lock)
    (fun () ->
      match Hashtbl.find_opt zeta_cache (n, theta) with
      | Some z -> z
      | None ->
        let sum = ref 0.0 in
        for i = 1 to n do
          sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
        done;
        Hashtbl.replace zeta_cache (n, theta) !sum;
        !sum)

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  if theta < 0.01 then
    { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; half_pow_theta = 0.0 }
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow_theta = Float.pow 0.5 theta }
  end

let n t = t.n
let theta t = t.theta

let next t rng =
  if t.theta < 0.01 then Rng.int rng t.n
  else begin
    let u = Rng.float rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else begin
      let rank =
        int_of_float
          (float_of_int t.n
          *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      if rank >= t.n then t.n - 1 else if rank < 0 then 0 else rank
    end
  end
