module Engine = Mutps_sim.Engine

type cfg = {
  k : int;
  interval : int;
  stride : int;
  max_intervals : int;
  max_warmup : int;
  rewarm_frac : float;
  err_z : float;
  rel_floor : float;
  seed : int;
}

let default =
  {
    k = 6;
    interval = 2_000_000;
    stride = 4;
    max_intervals = 64;
    max_warmup = 12_500_000;
    rewarm_frac = 0.25;
    err_z = 1.96;
    rel_floor = 0.03;
    seed = 42;
  }

let parse s =
  let s = String.trim s in
  if s = "" then Ok default
  else
    match String.split_on_char ',' s with
    | [ k ] -> (
      match int_of_string_opt (String.trim k) with
      | Some k when k >= 1 -> Ok { default with k }
      | _ -> Error (Printf.sprintf "bad phase count %S (expected K >= 1)" k))
    | [ k; interval ] -> (
      match
        (int_of_string_opt (String.trim k), int_of_string_opt (String.trim interval))
      with
      | Some k, Some interval when k >= 1 && interval >= 10_000 ->
        Ok { default with k; interval }
      | _ ->
        Error
          (Printf.sprintf "bad spec %S (expected K,INTERVAL with K >= 1, INTERVAL >= 10000)"
             s))
    | _ -> Error (Printf.sprintf "bad spec %S (expected K or K,INTERVAL)" s)

let to_string cfg = Printf.sprintf "%d,%d" cfg.k cfg.interval

type probe = {
  set_warming : bool -> unit;
  begin_interval : unit -> unit;
  end_interval : unit -> (string * float) list;
  signature : unit -> float array;
}

type estimate = { value : float; err : float }

type outcome = {
  metrics : (string * estimate) list;
  phases : int;
  nominal : int;
  intervals : int;
  detailed : int;
  coverage : float;
}

let run cfg ~engine ~probe ~measure =
  let l = cfg.interval in
  let nominal = max 1 ((measure + l - 1) / l) in
  let nsim = min nominal (max 1 cfg.max_intervals) in
  let rewarm =
    max 0 (int_of_float (cfg.rewarm_frac *. float_of_int l))
  in
  let sigs = Array.make nsim [||] in
  let observed = Array.make nsim None in
  let simulated = ref 0 in
  let run_for cycles =
    Engine.run engine ~until:(Engine.now engine + cycles);
    simulated := !simulated + cycles
  in
  (* baseline: the next [signature] covers exactly interval 0 *)
  ignore (probe.signature ());
  let warming = ref false in
  for i = 0 to nsim - 1 do
    if i mod cfg.stride = 0 then begin
      (* detailed interval *)
      if !warming then begin
        probe.set_warming false;
        warming := false;
        if rewarm > 0 then begin
          (* re-warm the cache arrays after the frozen regime; excluded
             from both the metrics window and this interval's signature *)
          run_for rewarm;
          ignore (probe.signature ())
        end
      end;
      probe.begin_interval ();
      run_for l;
      sigs.(i) <- probe.signature ();
      observed.(i) <- Some (probe.end_interval ())
    end
    else begin
      if not !warming then begin
        probe.set_warming true;
        warming := true
      end;
      run_for l;
      sigs.(i) <- probe.signature ()
    end
  done;
  if !warming then probe.set_warming false;
  (* ---- phase detection ---- *)
  let k = max 1 (min cfg.k nsim) in
  let assign, centers = Kmeans.cluster ~k ~seed:cfg.seed sigs in
  let counts = Array.make k 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) assign;
  let has_detail = Array.make k false in
  Array.iteri
    (fun i c -> if observed.(i) <> None then has_detail.(c) <- true)
    assign;
  (* a phase seen only while warming borrows the nearest phase that has a
     detailed member (interval 0 is always detailed, so one exists) *)
  let source =
    Array.init k (fun c ->
        if has_detail.(c) || counts.(c) = 0 then c
        else begin
          let best = ref c and bestd = ref infinity in
          for c' = 0 to k - 1 do
            if has_detail.(c') then begin
              let d = Kmeans.sq_dist centers.(c) centers.(c') in
              if d < !bestd then begin
                bestd := d;
                best := c'
              end
            end
          done;
          !best
        end)
  in
  (* ---- weighted reconstruction ---- *)
  let names =
    match observed.(0) with Some m -> List.map fst m | None -> []
  in
  let total = float_of_int nsim in
  let estimate name =
    let est = ref 0.0 and var_term = ref 0.0 in
    for c = 0 to k - 1 do
      if counts.(c) > 0 then begin
        let src = source.(c) in
        let sum = ref 0.0 and sumsq = ref 0.0 and m = ref 0 in
        Array.iteri
          (fun i c' ->
            if c' = src then
              match observed.(i) with
              | Some ms -> (
                match List.assoc_opt name ms with
                | Some v ->
                  sum := !sum +. v;
                  sumsq := !sumsq +. (v *. v);
                  incr m
                | None -> ())
              | None -> ())
          assign;
        if !m > 0 then begin
          let w = float_of_int counts.(c) /. total in
          let fm = float_of_int !m in
          let mean = !sum /. fm in
          let var =
            if !m > 1 then
              Float.max 0.0 ((!sumsq -. (!sum *. !sum /. fm)) /. (fm -. 1.0))
            else 0.0
          in
          est := !est +. (w *. mean);
          var_term := !var_term +. (w *. w *. var /. fm)
        end
      end
    done;
    let err =
      (cfg.err_z *. sqrt !var_term) +. (cfg.rel_floor *. Float.abs !est)
    in
    (name, { value = !est; err })
  in
  let phases = Array.fold_left (fun a n -> if n > 0 then a + 1 else a) 0 counts in
  let detailed =
    Array.fold_left (fun a o -> if o <> None then a + 1 else a) 0 observed
  in
  {
    metrics = List.map estimate names;
    phases;
    nominal;
    intervals = nsim;
    detailed;
    coverage = Float.min 1.0 (float_of_int !simulated /. float_of_int measure);
  }
