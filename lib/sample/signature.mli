(** Interval signatures — the basic-block-vector analog.

    A {!source} is a fixed set of numeric features read from existing
    accounting (the pull-based {!Mutps_trace.Metrics} registry, or ad-hoc
    counter closures).  [take] returns the features accumulated since the
    previous [take] — counters are differenced, gauges read absolutely —
    L1-normalized so intervals with different op volumes but the same
    behavior mix land on the same point.  Reads never mutate simulation
    state, so taking signatures cannot perturb a run. *)

type source

val of_metrics :
  ?extra:(unit -> float) array -> engine_id:int -> Mutps_trace.Metrics.t ->
  source
(** Features from every registry entry owned by [engine_id] (or
    registered engine-agnostic with id [-1]), in registration order, plus
    the [extra] closures (treated as counters).  The current values are
    snapshotted at creation, so the first [take] covers exactly the span
    since [of_metrics]. *)

val of_counters : (unit -> float) array -> source
(** All features are cumulative counters. *)

val dim : source -> int

val take : source -> float array
(** Delta-and-normalize since the previous [take] (or since creation).
    A counter that went backwards — the harness resets client stats at
    interval starts — contributes its current raw value instead of the
    negative delta.  Returns the zero vector when all features are 0. *)
