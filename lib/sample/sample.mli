(** Interval sampling for paper-scale runs (SimPoint-style).

    A measured window is cut into fixed-length intervals.  A strided
    subset runs *detailed* (full cost model, metrics collected); the rest
    run in the cheap *functional warming* regime (the event loop,
    store/index/hot-set state and schedules all advance for real; only
    the cache-latency model is flattened — see
    {!Mutps_mem.Hierarchy.set_warming}).  Every interval yields a
    {!Signature} feature vector; seeded k-means clusters them into
    phases, and each metric is reconstructed as the phase-weighted mean
    of its detailed observations, with a per-metric error bound
    (z × weighted standard error across phases + a relative floor for
    the warming/truncation bias).

    Long windows are additionally truncated: at most [max_intervals]
    intervals are simulated and the phase weights extrapolate to the
    nominal window, which is what makes 10M-item runs land in CI-budget
    minutes.

    Everything is deterministic — seeded clustering, no wall clock — so
    sampled runs are bit-identical across [--jobs] and tracing on/off. *)

type cfg = {
  k : int;  (** phase count (clamped to the interval count) *)
  interval : int;  (** interval length in simulated cycles *)
  stride : int;  (** every [stride]-th interval runs detailed *)
  max_intervals : int;  (** truncation cap on simulated intervals *)
  max_warmup : int;
      (** warmup cap in cycles — cache/hot-set warmup does not need to
          scale with the measured window *)
  rewarm_frac : float;
      (** fraction of an interval re-run detailed (and excluded from
          stats) after warming, to refresh the cache arrays *)
  err_z : float;  (** multiplier on the weighted standard error *)
  rel_floor : float;  (** relative bias allowance added to every bound *)
  seed : int;  (** k-means seed *)
}

val default : cfg

val parse : string -> (cfg, string) result
(** CLI spec: [""] is {!default}, ["K"] overrides the phase count,
    ["K,INTERVAL"] also overrides the interval length. *)

val to_string : cfg -> string

type probe = {
  set_warming : bool -> unit;  (** switch the cost-model regime *)
  begin_interval : unit -> unit;  (** reset per-window stats *)
  end_interval : unit -> (string * float) list;
      (** per-interval metric observations; the name set must be the
          same for every detailed interval *)
  signature : unit -> float array;
      (** features accumulated since the last call
          (e.g. {!Signature.take}) *)
}

type estimate = { value : float; err : float }
(** A reconstructed per-interval metric and its error bound: the true
    per-interval mean is estimated to lie within [value ± err]. *)

type outcome = {
  metrics : (string * estimate) list;
  phases : int;  (** non-empty clusters *)
  nominal : int;  (** intervals a full run would have *)
  intervals : int;  (** intervals actually simulated *)
  detailed : int;  (** of which detailed *)
  coverage : float;  (** simulated cycles / nominal window, capped at 1 *)
}

val run :
  cfg -> engine:Mutps_sim.Engine.t -> probe:probe -> measure:int -> outcome
(** Drive [engine] over [measure] cycles (truncated per [cfg]), starting
    at the engine's current time.  Interval 0 is always detailed.  The
    caller must have called [probe.signature] semantics in mind: [run]
    takes one baseline signature before the first interval and one per
    interval (plus one discarded after each re-warm prefix). *)
