(** Deterministic k-means for interval signatures.

    Seeded k-means++ initialization over {!Mutps_sim.Rng} (no ambient
    randomness — R1 clean), a fixed number of Lloyd iterations with an
    early exit when the assignment stabilizes, and index-order tie-breaks
    everywhere, so the clustering is a pure function of
    [(points, k, seed)]. *)

val sq_dist : float array -> float array -> float
(** Squared Euclidean distance (vectors must have equal length). *)

val cluster :
  k:int -> seed:int -> ?iters:int -> float array array ->
  int array * float array array
(** [cluster ~k ~seed points] returns [(assignment, centroids)] where
    [assignment.(i)] is the centroid index of [points.(i)].  [k] is
    clamped to [1 .. Array.length points]; empty input yields
    [([||], [||])].  Empty clusters keep their previous centroid.  On
    distance ties the lowest centroid index wins. *)
