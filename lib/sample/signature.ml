module Metrics = Mutps_trace.Metrics

type feature = { read : unit -> float; counter : bool }
type source = { feats : feature array; prev : float array }

let make feats =
  {
    feats;
    prev =
      Array.map (fun f -> if f.counter then f.read () else 0.0) feats;
  }

let of_counters reads =
  make (Array.map (fun read -> { read; counter = true }) reads)

let of_metrics ?(extra = [||]) ~engine_id reg =
  let entries =
    List.filter
      (fun (e : Metrics.entry) ->
        engine_id < 0 || e.engine_id = engine_id || e.engine_id = -1)
      (Metrics.entries reg)
  in
  let of_entry (e : Metrics.entry) =
    { read = e.Metrics.read; counter = e.Metrics.kind = Metrics.Counter }
  in
  make
    (Array.append
       (Array.of_list (List.map of_entry entries))
       (Array.map (fun read -> { read; counter = true }) extra))

let dim t = Array.length t.feats

let take t =
  let n = Array.length t.feats in
  let v = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let f = t.feats.(i) in
    let raw = f.read () in
    let x =
      if f.counter then begin
        let d = raw -. t.prev.(i) in
        t.prev.(i) <- raw;
        (* counter reset mid-span (e.g. client stats cleared at an
           interval start): the raw value is the best lower bound *)
        if d < 0.0 then raw else d
      end
      else raw
    in
    v.(i) <- x
  done;
  let norm = Array.fold_left (fun a x -> a +. Float.abs x) 0.0 v in
  if norm > 0.0 then
    for i = 0 to n - 1 do
      v.(i) <- v.(i) /. norm
    done;
  v
