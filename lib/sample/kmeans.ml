module Rng = Mutps_sim.Rng

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Weighted choice for k-means++: pick the first index whose cumulative
   weight reaches [target].  Falls back to the last index (rounding). *)
let weighted_pick weights target =
  let n = Array.length weights in
  let acc = ref 0.0 and chosen = ref (n - 1) and i = ref 0 in
  let searching = ref true in
  while !searching && !i < n do
    acc := !acc +. weights.(!i);
    if !acc >= target then begin
      chosen := !i;
      searching := false
    end;
    incr i
  done;
  !chosen

let cluster ~k ~seed ?(iters = 30) points =
  let n = Array.length points in
  if n = 0 then ([||], [||])
  else begin
    let k = max 1 (min k n) in
    let dim = Array.length points.(0) in
    let rng = Rng.create seed in
    (* k-means++ seeding: each next center drawn proportionally to the
       squared distance from the nearest already-chosen center *)
    let centers = Array.make k [||] in
    centers.(0) <- Array.copy points.(Rng.int rng n);
    let d2 = Array.map (fun p -> sq_dist p centers.(0)) points in
    for c = 1 to k - 1 do
      let total = Array.fold_left ( +. ) 0.0 d2 in
      let idx =
        if total <= 0.0 then Rng.int rng n
        else weighted_pick d2 (Rng.float rng *. total)
      in
      centers.(c) <- Array.copy points.(idx);
      Array.iteri
        (fun i p ->
          let d = sq_dist p centers.(c) in
          if d < d2.(i) then d2.(i) <- d)
        points
    done;
    let assign = Array.make n (-1) in
    let nearest p =
      let best = ref 0 and bestd = ref (sq_dist p centers.(0)) in
      for c = 1 to k - 1 do
        let d = sq_dist p centers.(c) in
        (* strict <: ties keep the lowest index *)
        if d < !bestd then begin
          bestd := d;
          best := c
        end
      done;
      !best
    in
    let sums = Array.init k (fun _ -> Array.make dim 0.0) in
    let counts = Array.make k 0 in
    let changed = ref true in
    let round = ref 0 in
    while !changed && !round < iters do
      incr round;
      changed := false;
      Array.iteri
        (fun i p ->
          let c = nearest p in
          if c <> assign.(i) then changed := true;
          assign.(i) <- c)
        points;
      if !changed then begin
        Array.iter (fun s -> Array.fill s 0 dim 0.0) sums;
        Array.fill counts 0 k 0;
        Array.iteri
          (fun i p ->
            let c = assign.(i) in
            counts.(c) <- counts.(c) + 1;
            let s = sums.(c) in
            for j = 0 to dim - 1 do
              s.(j) <- s.(j) +. p.(j)
            done)
          points;
        for c = 0 to k - 1 do
          (* an empty cluster keeps its previous centroid *)
          if counts.(c) > 0 then begin
            let s = sums.(c) and m = float_of_int counts.(c) in
            let ctr = Array.make dim 0.0 in
            for j = 0 to dim - 1 do
              ctr.(j) <- s.(j) /. m
            done;
            centers.(c) <- ctr
          end
        done
      end
    done;
    (* final assignment against the final centroids *)
    Array.iteri (fun i p -> assign.(i) <- nearest p) points;
    (assign, centers)
  end
