(* Driver for the determinism & charge-discipline lint and the
   zero-allocation certifier (lib/lint).

   Usage: mutps_lint [--format text|json] [--intra-only] [DIR-OR-FILE ...]
                                          (default roots: lib bin bench examples)

   Runs in project mode: every file is parsed once, checked with the
   intra-procedural rules (R1/R2/R4 plus everything but the lexical R3),
   and the whole set is then analyzed as one closed world twice — by the
   interprocedural charge pass (lib/lint/interp.ml), which refines R3
   across call sites and catches R2 leaks through sanctioned raw-access
   helpers, and by the allocation certifier (lib/lint/alloc.ml), which
   proves every function reachable from a [@hot] root free of heap
   allocation (A1), boxing (A2) and observability escapes (A3).
   [--intra-only] restores the purely lexical R3 rule and skips both
   project passes — useful when linting a lone file out of context.

   Emits "file:line:col: [RULE] message" per finding (the shape the CI
   problem matcher parses), or a JSON object with [--format json], and
   exits non-zero when any finding or parse error is produced.
   Suppressions are accounted per rule family (R vs A) and stale
   [@alloc.allow] attributes — ones that no longer cover any would-be
   finding — are listed so they can be deleted.  Wired to
   `dune build @lint`; see DESIGN.md "Determinism invariants" and §9. *)

module Lint = Mutps_lint.Lint
module Interp = Mutps_lint.Interp
module Alloc = Mutps_lint.Alloc

let rec collect acc path =
  let base = Filename.basename path in
  if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> collect acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json findings ~r_suppressed ~(alloc : Alloc.result option) =
  print_string "{\n  \"findings\": [";
  List.iteri
    (fun i (f : Lint.finding) ->
      Printf.printf "%s\n    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \
                     \"rule\": \"%s\", \"message\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape f.Lint.file) f.Lint.line f.Lint.col
        (json_escape f.Lint.rule) (json_escape f.Lint.msg))
    findings;
  print_string (if findings = [] then "],\n" else "\n  ],\n");
  let rules = List.sort_uniq compare (List.map fst r_suppressed) in
  Printf.printf "  \"suppressed\": { %s },\n"
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf "\"%s\": %d" (json_escape r)
              (List.length (List.filter (fun (r', _) -> r' = r) r_suppressed)))
          rules));
  (match alloc with
  | None -> print_string "  \"alloc\": null\n"
  | Some a ->
    Printf.printf
      "  \"alloc\": {\n\
      \    \"hot_roots\": [%s],\n\
      \    \"certified\": %d,\n\
      \    \"allow_sites\": [%s]\n\
      \  }\n"
      (String.concat ", "
         (List.map (fun r -> "\"" ^ json_escape r ^ "\"") a.Alloc.hot_roots))
      (List.length a.Alloc.hot_set)
      (String.concat ","
         (List.map
            (fun (s : Alloc.allow_site) ->
              Printf.sprintf
                "\n      { \"file\": \"%s\", \"line\": %d, \"uses\": %d, \
                 \"reason\": \"%s\" }"
              (json_escape s.Alloc.al_file) s.Alloc.al_line s.Alloc.al_uses
              (json_escape s.Alloc.al_reason))
            a.Alloc.allow_sites)));
  print_string "}\n"

let () =
  let format = ref `Text and intra_only = ref false in
  let roots =
    let rec parse acc = function
      | "--format" :: "json" :: rest ->
        format := `Json;
        parse acc rest
      | "--format" :: "text" :: rest ->
        format := `Text;
        parse acc rest
      | "--format" :: _ ->
        prerr_endline "mutps_lint: --format expects 'text' or 'json'";
        exit 2
      | "--intra-only" :: rest ->
        intra_only := true;
        parse acc rest
      | r :: rest -> parse (r :: acc) rest
      | [] -> List.rev acc
    in
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | roots -> roots
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "mutps_lint: no such path %s\n%!") missing;
  let files =
    List.fold_left collect [] (List.filter Sys.file_exists roots)
    |> List.sort compare
  in
  let errors = ref (List.length missing) in
  (* parse once; share the AST between the intra and project passes *)
  let parsed =
    List.filter_map
      (fun f ->
        match Lint.parse_implementation f with
        | str -> Some (f, f, str)
        | exception Syntaxerr.Error _ ->
          incr errors;
          Printf.eprintf "mutps_lint: %s: syntax error\n%!" f;
          None
        | exception Sys_error m ->
          incr errors;
          Printf.eprintf "mutps_lint: %s\n%!" m;
          None)
      files
  in
  (* suppression accounting: every [@lint.allow] that actually covered a
     would-be finding, by rule *)
  let r_suppressed = ref [] in
  let on_suppressed ~rule ~loc:(_ : Location.t) =
    r_suppressed := (rule, ()) :: !r_suppressed
  in
  let intra =
    List.concat_map
      (fun (file, rule_path, str) ->
        Lint.check_structure ~file ~rule_path ~intra_r3:!intra_only
          ~on_suppressed str)
      parsed
  in
  let interp =
    if !intra_only then [] else Interp.check_project ~on_suppressed parsed
  in
  let alloc = if !intra_only then None else Some (Alloc.check_project parsed) in
  let alloc_findings =
    match alloc with Some a -> a.Alloc.findings | None -> []
  in
  let findings =
    List.sort Lint.compare_finding (intra @ interp @ alloc_findings)
  in
  (match !format with
  | `Json -> print_json findings ~r_suppressed:!r_suppressed ~alloc
  | `Text ->
    List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings);
  (* per-family suppression summary + stale [@alloc.allow] report, on
     stderr so it shows in CI logs without disturbing the parseable
     stdout *)
  let r_total = List.length !r_suppressed in
  let a_used, a_sites, stale =
    match alloc with
    | None -> (0, 0, [])
    | Some a ->
      ( List.fold_left
          (fun acc (s : Alloc.allow_site) -> acc + s.Alloc.al_uses)
          0 a.Alloc.allow_sites,
        List.length a.Alloc.allow_sites,
        List.filter
          (fun (s : Alloc.allow_site) -> s.Alloc.al_uses = 0)
          a.Alloc.allow_sites )
  in
  if r_total > 0 || a_sites > 0 then
    Printf.eprintf
      "mutps_lint: suppressions: R-family %d ([@lint.allow]), A-family %d \
       finding%s across %d [@alloc.allow] site%s\n"
      r_total a_used
      (if a_used = 1 then "" else "s")
      a_sites
      (if a_sites = 1 then "" else "s");
  List.iter
    (fun (s : Alloc.allow_site) ->
      Printf.eprintf
        "mutps_lint: stale [@alloc.allow] at %s:%d (%S) — covers no \
         finding, delete it\n"
        s.Alloc.al_file s.Alloc.al_line s.Alloc.al_reason)
    stale;
  let n = List.length findings in
  if n > 0 || !errors > 0 then begin
    Printf.eprintf "mutps_lint: %d finding%s, %d error%s in %d files\n" n
      (if n = 1 then "" else "s")
      !errors
      (if !errors = 1 then "" else "s")
      (List.length files);
    exit 1
  end
  else if !format = `Text then begin
    Printf.printf
      "mutps_lint: clean (%d files, rules R1-R4 + interprocedural)\n"
      (List.length files);
    match alloc with
    | Some a ->
      Printf.printf
        "mutps_alloc: %d hot root%s, %d function%s certified zero-alloc, %d \
         [@alloc.allow] suppression%s\n"
        (List.length a.Alloc.hot_roots)
        (if List.length a.Alloc.hot_roots = 1 then "" else "s")
        (List.length a.Alloc.hot_set)
        (if List.length a.Alloc.hot_set = 1 then "" else "s")
        a_sites
        (if a_sites = 1 then "" else "s")
    | None -> ()
  end
