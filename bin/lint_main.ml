(* Driver for the determinism & charge-discipline lint, the
   zero-allocation certifier and the domain-safety certifier (lib/lint).

   Usage: mutps_lint [--format text|json] [--intra-only]
                     [--strict-suppressions] [--lock-graph FILE]
                     [DIR-OR-FILE ...]
                                          (default roots: lib bin bench examples)

   Runs in project mode: every file is parsed once, checked with the
   intra-procedural rules (R1/R2/R4 plus everything but the lexical R3),
   and the whole set is then analyzed as one closed world three times —
   by the interprocedural charge pass (lib/lint/interp.ml), which
   refines R3 across call sites and catches R2 leaks through sanctioned
   raw-access helpers; by the allocation certifier (lib/lint/alloc.ml),
   which proves every function reachable from a [@hot] root free of heap
   allocation (A1), boxing (A2) and observability escapes (A3); and by
   the domain-safety certifier (lib/lint/dom.ml), which proves
   module-level mutable state synchronized (D1), spawn captures
   protected (D2), the lock-order graph acyclic (D3) and effect performs
   handler-dominated per domain (D4).  [--intra-only] restores the
   purely lexical R3 rule and skips the project passes — useful when
   linting a lone file out of context.

   Emits "file:line:col: [RULE] message" per finding (the shape the CI
   problem matcher parses), or a JSON object with [--format json], and
   exits non-zero when any finding or parse error is produced.
   Suppressions are accounted per rule family (R vs A vs D) and stale
   sites of all three attributes ([@lint.allow], [@alloc.allow],
   [@dom.allow]) — ones that no longer cover any would-be finding — are
   listed so they can be deleted; [--strict-suppressions] turns any
   stale site into a non-zero exit (CI runs this).  [--lock-graph FILE]
   writes the D3 lock-order graph as DOT.  Wired to `dune build @lint`;
   see DESIGN.md "Determinism invariants", §9 and §10. *)

module Lint = Mutps_lint.Lint
module Interp = Mutps_lint.Interp
module Alloc = Mutps_lint.Alloc
module Dom = Mutps_lint.Dom

let rec collect acc path =
  let base = Filename.basename path in
  if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> collect acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let status_string = function
  | Dom.S_sync what -> "sync:" ^ what
  | Dom.S_frozen -> "frozen"
  | Dom.S_locked l -> "locked:" ^ l
  | Dom.S_flagged -> "flagged"

let json_allow_sites (sites : Lint.allow_site list) =
  String.concat ","
    (List.map
       (fun (s : Lint.allow_site) ->
         Printf.sprintf
           "\n      { \"attr\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"uses\": %d, \"payload\": \"%s\" }"
           (json_escape s.Lint.as_attr) (json_escape s.Lint.as_file)
           s.Lint.as_line s.Lint.as_uses
           (json_escape s.Lint.as_payload))
       sites)

let print_json findings ~r_suppressed ~(alloc : Alloc.result option)
    ~(dom : Dom.result option) ~lint_sites =
  print_string "{\n  \"findings\": [";
  List.iteri
    (fun i (f : Lint.finding) ->
      Printf.printf "%s\n    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \
                     \"rule\": \"%s\", \"message\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape f.Lint.file) f.Lint.line f.Lint.col
        (json_escape f.Lint.rule) (json_escape f.Lint.msg))
    findings;
  print_string (if findings = [] then "],\n" else "\n  ],\n");
  let rules = List.sort_uniq compare (List.map fst r_suppressed) in
  Printf.printf "  \"suppressed\": { %s },\n"
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf "\"%s\": %d" (json_escape r)
              (List.length (List.filter (fun (r', _) -> r' = r) r_suppressed)))
          rules));
  Printf.printf "  \"lint_allow_sites\": [%s],\n" (json_allow_sites lint_sites);
  (match alloc with
  | None -> print_string "  \"alloc\": null,\n"
  | Some a ->
    Printf.printf
      "  \"alloc\": {\n\
      \    \"hot_roots\": [%s],\n\
      \    \"certified\": %d,\n\
      \    \"allow_sites\": [%s]\n\
      \  },\n"
      (String.concat ", "
         (List.map (fun r -> "\"" ^ json_escape r ^ "\"") a.Alloc.hot_roots))
      (List.length a.Alloc.hot_set)
      (String.concat ","
         (List.map
            (fun (s : Alloc.allow_site) ->
              Printf.sprintf
                "\n      { \"file\": \"%s\", \"line\": %d, \"uses\": %d, \
                 \"reason\": \"%s\" }"
              (json_escape s.Alloc.al_file) s.Alloc.al_line s.Alloc.al_uses
              (json_escape s.Alloc.al_reason))
            a.Alloc.allow_sites)));
  (match dom with
  | None -> print_string "  \"dom\": null\n"
  | Some d ->
    let g = d.Dom.graph in
    Printf.printf
      "  \"dom\": {\n\
      \    \"globals\": [%s],\n\
      \    \"mutable_types\": %d,\n\
      \    \"lock_nodes\": [%s],\n\
      \    \"lock_edges\": [%s],\n\
      \    \"lock_cycles\": [%s],\n\
      \    \"allow_sites\": [%s]\n\
      \  }\n"
      (String.concat ","
         (List.map
            (fun (gl : Dom.global) ->
              Printf.sprintf
                "\n      { \"key\": \"%s\", \"file\": \"%s\", \"line\": %d, \
                 \"what\": \"%s\", \"status\": \"%s\" }"
                (json_escape gl.Dom.g_key) (json_escape gl.Dom.g_file)
                gl.Dom.g_line (json_escape gl.Dom.g_what)
                (json_escape (status_string gl.Dom.g_status)))
            d.Dom.globals))
      d.Dom.mutable_types
      (String.concat ", "
         (List.map
            (fun n -> "\"" ^ json_escape n ^ "\"")
            (Dom.Lockgraph.nodes g)))
      (String.concat ","
         (List.map
            (fun (src, dst, file, line) ->
              Printf.sprintf
                "\n      { \"src\": \"%s\", \"dst\": \"%s\", \"file\": \
                 \"%s\", \"line\": %d }"
                (json_escape src) (json_escape dst) (json_escape file) line)
            (Dom.Lockgraph.edges g)))
      (String.concat ", "
         (List.map
            (fun cyc ->
              "["
              ^ String.concat ", "
                  (List.map (fun n -> "\"" ^ json_escape n ^ "\"") cyc)
              ^ "]")
            (Dom.Lockgraph.cycles g)))
      (json_allow_sites d.Dom.allow_sites));
  print_string "}\n"

let () =
  let format = ref `Text
  and intra_only = ref false
  and strict_suppressions = ref false
  and lock_graph = ref None in
  let roots =
    let rec parse acc = function
      | "--format" :: "json" :: rest ->
        format := `Json;
        parse acc rest
      | "--format" :: "text" :: rest ->
        format := `Text;
        parse acc rest
      | "--format" :: _ ->
        prerr_endline "mutps_lint: --format expects 'text' or 'json'";
        exit 2
      | "--intra-only" :: rest ->
        intra_only := true;
        parse acc rest
      | "--strict-suppressions" :: rest ->
        strict_suppressions := true;
        parse acc rest
      | "--lock-graph" :: file :: rest when file <> "" && file.[0] <> '-' ->
        lock_graph := Some file;
        parse acc rest
      | "--lock-graph" :: _ ->
        prerr_endline "mutps_lint: --lock-graph expects an output FILE";
        exit 2
      | r :: rest -> parse (r :: acc) rest
      | [] -> List.rev acc
    in
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | roots -> roots
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "mutps_lint: no such path %s\n%!") missing;
  let files =
    List.fold_left collect [] (List.filter Sys.file_exists roots)
    |> List.sort compare
  in
  let errors = ref (List.length missing) in
  (* parse once; share the AST between the intra and project passes *)
  let parsed =
    List.filter_map
      (fun f ->
        match Lint.parse_implementation f with
        | str -> Some (f, f, str)
        | exception Syntaxerr.Error _ ->
          incr errors;
          Printf.eprintf "mutps_lint: %s: syntax error\n%!" f;
          None
        | exception Sys_error m ->
          incr errors;
          Printf.eprintf "mutps_lint: %s\n%!" m;
          None)
      files
  in
  (* suppression accounting: every [@lint.allow] that actually covered a
     would-be finding, by rule *)
  let r_suppressed = ref [] in
  let on_suppressed ~rule ~loc:(_ : Location.t) =
    r_suppressed := (rule, ()) :: !r_suppressed
  in
  (* one registry shared across the intra, interprocedural and domain
     passes: [@lint.allow]/[@dom.allow] use counters accumulate so a
     site is stale only if no pass consumed it *)
  let registry = Lint.new_allow_registry () in
  let intra =
    List.concat_map
      (fun (file, rule_path, str) ->
        Lint.check_structure ~file ~rule_path ~intra_r3:!intra_only
          ~on_suppressed ~registry str)
      parsed
  in
  let interp =
    if !intra_only then []
    else Interp.check_project ~on_suppressed ~registry parsed
  in
  let alloc = if !intra_only then None else Some (Alloc.check_project parsed) in
  let alloc_findings =
    match alloc with Some a -> a.Alloc.findings | None -> []
  in
  let dom =
    if !intra_only then None else Some (Dom.check_project ~registry parsed)
  in
  let dom_findings = match dom with Some d -> d.Dom.findings | None -> [] in
  (match (!lock_graph, dom) with
  | Some file, Some d ->
    let oc = open_out file in
    output_string oc (Dom.Lockgraph.to_dot d.Dom.graph);
    close_out oc
  | Some _, None ->
    prerr_endline "mutps_lint: --lock-graph needs the project passes \
                   (drop --intra-only)"
  | None, _ -> ());
  let findings =
    List.sort Lint.compare_finding
      (intra @ interp @ alloc_findings @ dom_findings)
  in
  let lint_sites = Lint.allow_sites registry in
  (match !format with
  | `Json ->
    print_json findings ~r_suppressed:!r_suppressed ~alloc ~dom ~lint_sites
  | `Text ->
    List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings);
  (* per-family suppression summary + stale [@alloc.allow] report, on
     stderr so it shows in CI logs without disturbing the parseable
     stdout *)
  let r_total = List.length !r_suppressed in
  let a_used, a_sites, a_stale =
    match alloc with
    | None -> (0, 0, [])
    | Some a ->
      ( List.fold_left
          (fun acc (s : Alloc.allow_site) -> acc + s.Alloc.al_uses)
          0 a.Alloc.allow_sites,
        List.length a.Alloc.allow_sites,
        List.filter
          (fun (s : Alloc.allow_site) -> s.Alloc.al_uses = 0)
          a.Alloc.allow_sites )
  in
  let d_total = match dom with Some d -> d.Dom.suppressed | None -> 0 in
  let d_sites =
    match dom with Some d -> List.length d.Dom.allow_sites | None -> 0
  in
  if r_total > 0 || a_sites > 0 || d_sites > 0 then
    Printf.eprintf
      "mutps_lint: suppressions: R-family %d ([@lint.allow]), A-family %d \
       finding%s across %d [@alloc.allow] site%s, D-family %d finding%s \
       across %d [@dom.allow] site%s\n"
      r_total a_used
      (if a_used = 1 then "" else "s")
      a_sites
      (if a_sites = 1 then "" else "s")
      d_total
      (if d_total = 1 then "" else "s")
      d_sites
      (if d_sites = 1 then "" else "s");
  (* stale-suppression report: all three attribute families *)
  let registry_stale = Lint.stale_allow_sites registry in
  List.iter
    (fun (s : Lint.allow_site) ->
      Printf.eprintf
        "mutps_lint: stale [@%s] at %s:%d (%S) — covers no finding, delete \
         it\n"
        s.Lint.as_attr s.Lint.as_file s.Lint.as_line s.Lint.as_payload)
    registry_stale;
  List.iter
    (fun (s : Alloc.allow_site) ->
      Printf.eprintf
        "mutps_lint: stale [@alloc.allow] at %s:%d (%S) — covers no \
         finding, delete it\n"
        s.Alloc.al_file s.Alloc.al_line s.Alloc.al_reason)
    a_stale;
  let n_stale = List.length registry_stale + List.length a_stale in
  if !strict_suppressions && n_stale > 0 then begin
    Printf.eprintf
      "mutps_lint: --strict-suppressions: %d stale suppression site%s\n"
      n_stale
      (if n_stale = 1 then "" else "s");
    exit 1
  end;
  let n = List.length findings in
  if n > 0 || !errors > 0 then begin
    Printf.eprintf "mutps_lint: %d finding%s, %d error%s in %d files\n" n
      (if n = 1 then "" else "s")
      !errors
      (if !errors = 1 then "" else "s")
      (List.length files);
    exit 1
  end
  else if !format = `Text then begin
    Printf.printf
      "mutps_lint: clean (%d files, rules R1-R4 + interprocedural)\n"
      (List.length files);
    (match alloc with
    | Some a ->
      Printf.printf
        "mutps_alloc: %d hot root%s, %d function%s certified zero-alloc, %d \
         [@alloc.allow] suppression%s\n"
        (List.length a.Alloc.hot_roots)
        (if List.length a.Alloc.hot_roots = 1 then "" else "s")
        (List.length a.Alloc.hot_set)
        (if List.length a.Alloc.hot_set = 1 then "" else "s")
        a_sites
        (if a_sites = 1 then "" else "s")
    | None -> ());
    match dom with
    | Some d ->
      let flagged =
        List.length
          (List.filter
             (fun (g : Dom.global) -> g.Dom.g_status = Dom.S_flagged)
             d.Dom.globals)
      in
      Printf.printf
        "mutps_dom: %d module-level mutable/sync binding%s certified (%d \
         flagged), %d lock%s, %d lock-order cycle%s, %d [@dom.allow] \
         suppression%s\n"
        (List.length d.Dom.globals)
        (if List.length d.Dom.globals = 1 then "" else "s")
        flagged
        (List.length (Dom.Lockgraph.nodes d.Dom.graph))
        (if List.length (Dom.Lockgraph.nodes d.Dom.graph) = 1 then "" else "s")
        (List.length (Dom.Lockgraph.cycles d.Dom.graph))
        (if List.length (Dom.Lockgraph.cycles d.Dom.graph) = 1 then ""
         else "s")
        d_sites
        (if d_sites = 1 then "" else "s")
    | None -> ()
  end
