(* Driver for the determinism & charge-discipline lint (lib/lint).

   Usage: mutps_lint [DIR-OR-FILE ...]   (default: lib bin bench examples)

   Emits "file:line:col: [RULE] message" per finding and exits non-zero
   when any finding or parse error is produced.  Wired to `dune build
   @lint`; see DESIGN.md "Determinism invariants". *)

module Lint = Mutps_lint.Lint

let rec collect acc path =
  let base = Filename.basename path in
  if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> collect acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib"; "bin"; "bench"; "examples" ]
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "mutps_lint: no such path %s\n%!") missing;
  let files =
    List.fold_left collect [] (List.filter Sys.file_exists roots)
    |> List.sort compare
  in
  let errors = ref (List.length missing) in
  let findings =
    List.concat_map
      (fun f ->
        match Lint.check_file f with
        | Ok fs -> fs
        | Error msg ->
          incr errors;
          Printf.eprintf "mutps_lint: %s\n%!" msg;
          [])
      files
    |> List.sort Lint.compare_finding
  in
  List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings;
  let n = List.length findings in
  if n > 0 || !errors > 0 then begin
    Printf.printf "mutps_lint: %d finding%s, %d error%s in %d files\n" n
      (if n = 1 then "" else "s")
      !errors
      (if !errors = 1 then "" else "s")
      (List.length files);
    exit 1
  end
  else
    Printf.printf "mutps_lint: clean (%d files, rules R1-R4)\n"
      (List.length files)
