(* Driver for the determinism & charge-discipline lint (lib/lint).

   Usage: mutps_lint [--format text|json] [--intra-only] [DIR-OR-FILE ...]
                                          (default roots: lib bin bench examples)

   Runs in project mode: every file is parsed once, checked with the
   intra-procedural rules (R1/R2/R4 plus everything but the lexical R3),
   and the whole set is then analyzed as one closed world by the
   interprocedural pass (lib/lint/interp.ml), which refines R3 across
   call sites and catches R2 leaks through sanctioned raw-access helpers.
   [--intra-only] restores the purely lexical R3 rule and skips the
   project pass — useful when linting a lone file out of context.

   Emits "file:line:col: [RULE] message" per finding (the shape the CI
   problem matcher parses), or a JSON array with [--format json], and
   exits non-zero when any finding or parse error is produced.  Wired to
   `dune build @lint`; see DESIGN.md "Determinism invariants". *)

module Lint = Mutps_lint.Lint
module Interp = Mutps_lint.Interp

let rec collect acc path =
  let base = Filename.basename path in
  if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc f -> collect acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json findings =
  print_string "[";
  List.iteri
    (fun i (f : Lint.finding) ->
      Printf.printf "%s\n  { \"file\": \"%s\", \"line\": %d, \"col\": %d, \
                     \"rule\": \"%s\", \"message\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape f.Lint.file) f.Lint.line f.Lint.col
        (json_escape f.Lint.rule) (json_escape f.Lint.msg))
    findings;
  print_string (if findings = [] then "]\n" else "\n]\n")

let () =
  let format = ref `Text and intra_only = ref false in
  let roots =
    let rec parse acc = function
      | "--format" :: "json" :: rest ->
        format := `Json;
        parse acc rest
      | "--format" :: "text" :: rest ->
        format := `Text;
        parse acc rest
      | "--format" :: _ ->
        prerr_endline "mutps_lint: --format expects 'text' or 'json'";
        exit 2
      | "--intra-only" :: rest ->
        intra_only := true;
        parse acc rest
      | r :: rest -> parse (r :: acc) rest
      | [] -> List.rev acc
    in
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | roots -> roots
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "mutps_lint: no such path %s\n%!") missing;
  let files =
    List.fold_left collect [] (List.filter Sys.file_exists roots)
    |> List.sort compare
  in
  let errors = ref (List.length missing) in
  (* parse once; share the AST between the intra and project passes *)
  let parsed =
    List.filter_map
      (fun f ->
        match Lint.parse_implementation f with
        | str -> Some (f, f, str)
        | exception Syntaxerr.Error _ ->
          incr errors;
          Printf.eprintf "mutps_lint: %s: syntax error\n%!" f;
          None
        | exception Sys_error m ->
          incr errors;
          Printf.eprintf "mutps_lint: %s\n%!" m;
          None)
      files
  in
  let intra =
    List.concat_map
      (fun (file, rule_path, str) ->
        Lint.check_structure ~file ~rule_path ~intra_r3:!intra_only str)
      parsed
  in
  let interp = if !intra_only then [] else Interp.check_project parsed in
  let findings = List.sort Lint.compare_finding (intra @ interp) in
  (match !format with
  | `Json -> print_json findings
  | `Text ->
    List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings);
  let n = List.length findings in
  if n > 0 || !errors > 0 then begin
    Printf.eprintf "mutps_lint: %d finding%s, %d error%s in %d files\n" n
      (if n = 1 then "" else "s")
      !errors
      (if !errors = 1 then "" else "s")
      (List.length files);
    exit 1
  end
  else if !format = `Text then
    Printf.printf "mutps_lint: clean (%d files, rules R1-R4 + interprocedural)\n"
      (List.length files)
