(* mutps-cli: run the paper's experiments or an ad-hoc server measurement
   from the command line. *)

open Cmdliner
open Mutps_experiments

(* --sanitize: run under the simulated-time race sanitizer (lib/san),
   print findings to stderr, exit non-zero if any.  3-5x slower. *)
let sanitize_term =
  let doc =
    "Attach the happens-before race sanitizer to every simulated engine; \
     report data races and lockset violations on stderr and fail if any \
     are found (3-5x slower)."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let with_sanitizer sanitize f =
  if not sanitize then f ()
  else begin
    let (), reports = Mutps_san.San.sanitized f in
    List.iter
      (fun r -> Printf.eprintf "sanitizer: %s\n%!" (Mutps_san.San.report_to_string r))
      reports;
    match reports with
    | [] -> Printf.eprintf "sanitizer: no races detected\n%!"
    | _ :: _ ->
      Printf.eprintf "sanitizer: %d finding(s)\n%!" (List.length reports);
      exit 3
  end

let scale_term =
  let keyspace =
    let doc = "Pre-populated keys (paper: 10M)." in
    Arg.(value & opt int Harness.default_scale.Harness.keyspace
         & info [ "keyspace" ] ~doc)
  in
  let cores =
    let doc = "Worker cores (paper: 28)." in
    Arg.(value & opt int Harness.default_scale.Harness.cores & info [ "cores" ] ~doc)
  in
  let clients =
    let doc = "Closed-loop client threads." in
    Arg.(value & opt int Harness.default_scale.Harness.clients & info [ "clients" ] ~doc)
  in
  let window =
    let doc = "Outstanding requests per client." in
    Arg.(value & opt int Harness.default_scale.Harness.window & info [ "window" ] ~doc)
  in
  let measure_ms =
    let doc = "Measured simulated milliseconds." in
    Arg.(value & opt float 10.0 & info [ "measure-ms" ] ~doc)
  in
  let combine keyspace cores clients window measure_ms =
    {
      Harness.keyspace;
      cores;
      clients;
      window;
      warmup = int_of_float (0.4 *. measure_ms *. 2_500_000.0);
      measure = int_of_float (measure_ms *. 2_500_000.0);
    }
  in
  Term.(const combine $ keyspace $ cores $ clients $ window $ measure_ms)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-8s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

(* --- run --- *)

let run_cmd =
  let names =
    let doc = "Experiments to run (see $(b,list)); 'all' runs everything." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run scale sanitize names =
    let names =
      if List.mem "all" names then Registry.names () else names
    in
    with_sanitizer sanitize @@ fun () ->
    List.iter
      (fun name ->
        match Registry.find name with
        | Some e -> e.Registry.run scale
        | None ->
          Printf.eprintf "unknown experiment %S (try 'list')\n%!" name;
          exit 1)
      names
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Reproduce one or more of the paper's tables/figures")
    Term.(const run $ scale_term $ sanitize_term $ names)

(* --- serve: one ad-hoc measurement --- *)

let serve_cmd =
  let system =
    let sys_conv =
      Arg.enum
        [ ("mutps", Harness.Mutps); ("basekv", Harness.Basekv);
          ("erpckv", Harness.Erpckv) ]
    in
    Arg.(value & opt sys_conv Harness.Mutps & info [ "system" ] ~doc:"System to run.")
  in
  let index =
    let index_conv =
      Arg.enum [ ("tree", Mutps_kvs.Config.Tree); ("hash", Mutps_kvs.Config.Hash) ]
    in
    Arg.(value & opt index_conv Mutps_kvs.Config.Tree & info [ "index" ] ~doc:"Index structure.")
  in
  let value_size =
    Arg.(value & opt int 64 & info [ "value-size" ] ~doc:"Value bytes.")
  in
  let theta =
    Arg.(value & opt float 0.99 & info [ "theta" ] ~doc:"Zipfian theta (0 = uniform).")
  in
  let get_ratio =
    Arg.(value & opt float 0.5 & info [ "get-ratio" ] ~doc:"Fraction of gets.")
  in
  let dlb =
    Arg.(value & flag & info [ "dlb" ] ~doc:"Offload the CR-MR queue to a DLB-style hardware queue (uTPS only).")
  in
  let run scale sanitize system index value_size theta get_ratio dlb =
    with_sanitizer sanitize @@ fun () ->
    let spec =
      {
        Mutps_workload.Opgen.name = "custom";
        keyspace = scale.Harness.keyspace;
        key_dist =
          (if theta < 0.01 then Mutps_workload.Opgen.Uniform
           else Mutps_workload.Opgen.Zipfian theta);
        size_dist = Mutps_workload.Opgen.Fixed value_size;
        mix = { Mutps_workload.Opgen.get = get_ratio; put = 1.0 -. get_ratio; scan = 0.0 };
        scan_len = 1;
      }
    in
    let tweak c = { c with Mutps_kvs.Config.dlb } in
    let m = Harness.measure ~index ~tweak system scale spec in
    Printf.printf
      "%s (%s index): %.2f Mops, P50 %.2f us, P99 %.2f us, %d ops, CR hit rate %.1f%%\n"
      (Harness.system_name system)
      (match index with Mutps_kvs.Config.Tree -> "tree" | Mutps_kvs.Config.Hash -> "hash")
      m.Harness.mops m.Harness.p50_us m.Harness.p99_us m.Harness.completed
      (100.0 *. m.Harness.cr_hit_rate)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run one system under a custom workload and print its measurement")
    Term.(
      const run $ scale_term $ sanitize_term $ system $ index $ value_size
      $ theta $ get_ratio $ dlb)

let () =
  let info =
    Cmd.info "mutps-cli" ~version:"1.0.0"
      ~doc:"uTPS reproduction: simulated in-memory KVS experiments"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; serve_cmd ]))
