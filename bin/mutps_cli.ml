(* mutps-cli: run the paper's experiments or an ad-hoc server measurement
   from the command line. *)

open Cmdliner
open Mutps_experiments

(* --sanitize: run under the simulated-time race sanitizer (lib/san),
   print findings to stderr, exit non-zero if any.  3-5x slower. *)
let sanitize_term =
  let doc =
    "Attach the happens-before race sanitizer to every simulated engine; \
     report data races and lockset violations on stderr and fail if any \
     are found (3-5x slower)."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let with_sanitizer sanitize f =
  if not sanitize then f ()
  else begin
    let (), reports = Mutps_san.San.sanitized f in
    List.iter
      (fun r -> Printf.eprintf "sanitizer: %s\n%!" (Mutps_san.San.report_to_string r))
      reports;
    match reports with
    | [] -> Printf.eprintf "sanitizer: no races detected\n%!"
    | _ :: _ ->
      Printf.eprintf "sanitizer: %d finding(s)\n%!" (List.length reports);
      exit 3
  end

(* --trace/--metrics/--profile: the observability layer (lib/trace).
   Installs a metrics registry plus a per-engine trace collector around the
   run, then writes the requested artifacts. *)
let obs_term =
  let trace =
    let doc =
      "Write a Chrome/Perfetto trace-event JSON of the run to $(docv): one \
       process per simulated engine, one slice track per simulated thread, \
       plus counter tracks sampled from the metrics registry.  Open it in \
       ui.perfetto.dev."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "Dump the metrics registry (per-subsystem counters and gauges, read \
       at end of run) to $(docv): CSV, or JSON when the name ends in .json."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let profile =
    let doc =
      "Write a collapsed-stack cycle profile (charged simulated cycles \
       aggregated by thread and site) to $(docv); feed it to flamegraph.pl \
       or speedscope."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let max_events =
    let doc =
      "Per-engine event cap for $(b,--trace) (experiments that build many \
       systems hold every engine's events until exit; lower this to bound \
       memory and trace size).  The profile and metrics are never truncated."
    in
    Arg.(value & opt int 2_000_000
         & info [ "trace-max-events" ] ~docv:"N" ~doc)
  in
  let combine trace metrics profile max_events =
    (trace, metrics, profile, max_events)
  in
  Term.(const combine $ trace $ metrics $ profile $ max_events)

let with_observability (trace, metrics, profile, max_events) f =
  if trace = None && metrics = None && profile = None then f ()
  else begin
    let module T = Mutps_trace in
    let reg = T.Metrics.create () in
    T.Metrics.set_current (Some reg);
    Fun.protect ~finally:(fun () -> T.Metrics.set_current None) @@ fun () ->
    (* with no event consumer, keep only the per-site cycle aggregates *)
    let keep_events = trace <> None in
    let (), collectors = T.Trace.traced ~keep_events ~max_events f in
    (match trace with
    | Some path ->
      T.Perfetto.write_file path collectors;
      let events =
        List.fold_left
          (fun acc c ->
            acc + T.Trace.slice_count c + T.Trace.instant_count c
            + T.Trace.counter_count c)
          0 collectors
      in
      Printf.eprintf "trace: %d event(s) from %d engine(s) -> %s\n%!" events
        (List.length collectors) path;
      let dropped =
        List.fold_left (fun acc c -> acc + T.Trace.dropped c) 0 collectors
      in
      if dropped > 0 then
        Printf.eprintf
          "trace: %d further event(s) past the per-engine cap were dropped \
           (shorter --measure-ms or higher --trace-max-events for a \
           complete trace)\n%!"
          dropped
    | None -> ());
    (match metrics with
    | Some path ->
      T.Metrics.write_file reg path;
      Printf.eprintf "metrics: %d source(s) -> %s\n%!" (T.Metrics.size reg)
        path
    | None -> ());
    match profile with
    | Some path ->
      T.Profile.write_file path collectors;
      Printf.eprintf "profile: %d cycle(s) attributed -> %s\n%!"
        (T.Profile.total collectors) path
    | None -> ()
  end

let scale_term =
  let keyspace =
    let doc = "Pre-populated keys (paper: 10M)." in
    Arg.(value & opt int Harness.default_scale.Harness.keyspace
         & info [ "keyspace" ] ~doc)
  in
  let cores =
    let doc = "Worker cores (paper: 28)." in
    Arg.(value & opt int Harness.default_scale.Harness.cores & info [ "cores" ] ~doc)
  in
  let clients =
    let doc = "Closed-loop client threads." in
    Arg.(value & opt int Harness.default_scale.Harness.clients & info [ "clients" ] ~doc)
  in
  let window =
    let doc = "Outstanding requests per client." in
    Arg.(value & opt int Harness.default_scale.Harness.window & info [ "window" ] ~doc)
  in
  let measure_ms =
    let doc = "Measured simulated milliseconds." in
    Arg.(value & opt float 10.0 & info [ "measure-ms" ] ~doc)
  in
  let sample =
    let doc =
      "Interval sampling (SimPoint-style): simulate a truncated set of \
       fixed-length intervals, fast-forward the rest under functional \
       warming, and reconstruct full-run estimates with per-metric error \
       bounds ($(i,*_err) metrics in the rows).  $(docv) is \
       $(i,K)[,$(i,INTERVAL)] — phase count and interval length in \
       simulated cycles; bare $(b,--sample) uses the defaults."
    in
    Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "sample" ] ~docv:"SPEC" ~doc)
  in
  let combine keyspace cores clients window measure_ms sample =
    let sample =
      match sample with
      | None -> None
      | Some spec -> (
        match Mutps_sample.Sample.parse spec with
        | Ok cfg -> Some cfg
        | Error msg ->
          Printf.eprintf "--sample: %s\n%!" msg;
          exit 1)
    in
    {
      Harness.keyspace;
      cores;
      clients;
      window;
      warmup = int_of_float (0.4 *. measure_ms *. 2_500_000.0);
      measure = int_of_float (measure_ms *. 2_500_000.0);
      sample;
    }
  in
  Term.(
    const combine $ keyspace $ cores $ clients $ window $ measure_ms $ sample)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-8s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

(* --- run --- *)

let run_cmd =
  let names =
    let doc = "Experiments to run (see $(b,list)); 'all' runs everything." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let jobs =
    let doc =
      "Worker domains for the experiment fan-out (experiments are \
       independent simulations; results are identical for any job \
       count).  Defaults to the machine's recommended domain count."
    in
    Arg.(value & opt int (Runner.default_jobs ())
         & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let json =
    let doc =
      "Write every experiment datapoint to $(docv) as canonical JSON \
       (sorted keys, fixed float formatting; bit-reproducible for a \
       given build and scale — see $(b,bench-compare))."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run scale sanitize obs jobs json names =
    let names =
      if List.mem "all" names then Registry.names () else names
    in
    (match List.filter (fun n -> Registry.find n = None) names with
    | [] -> ()
    | unknown ->
      Printf.eprintf "unknown experiment(s): %s (try 'list')\n%!"
        (String.concat ", " unknown);
      exit 1);
    with_sanitizer sanitize @@ fun () ->
    with_observability obs @@ fun () ->
    let outcomes =
      Runner.run_all ~jobs
        ~on_done:(fun o ->
          if o.Runner.error <> None then
            Printf.eprintf "[%s FAILED]\n%!" o.Runner.name)
        names scale
    in
    List.iter
      (fun (o : Runner.outcome) ->
        print_string o.Runner.output;
        match o.Runner.error with
        | None -> ()
        | Some msg -> Printf.printf "[%s FAILED: %s]\n%!" o.Runner.name msg)
      outcomes;
    (match json with
    | Some path ->
      Report.write_file path (Runner.rows outcomes);
      Printf.eprintf "json: %d row(s) -> %s\n%!"
        (List.length (Runner.rows outcomes))
        path
    | None -> ());
    match Runner.failed outcomes with
    | [] -> ()
    | failed ->
      Printf.eprintf "%d experiment(s) failed\n%!" (List.length failed);
      exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Reproduce one or more of the paper's tables/figures")
    Term.(
      const run $ scale_term $ sanitize_term $ obs_term $ jobs $ json $ names)

(* --- bench-compare: the regression gate over canonical result files --- *)

let bench_compare_cmd =
  let baseline =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline canonical JSON result file.")
  in
  let current =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current canonical JSON result file.")
  in
  let tolerance =
    let doc =
      "Allowed relative drift per metric.  The default 0 demands exact \
       equality of canonical values — sound because the DES is \
       deterministic, so any difference is a real behavioral change."
    in
    Arg.(value & opt float 0.0 & info [ "tolerance" ] ~docv:"FRAC" ~doc)
  in
  let run baseline current tolerance =
    let load path =
      try Report.read_file path
      with
      | Report.Parse_error msg ->
        Printf.eprintf "%s: parse error: %s\n%!" path msg;
        exit 2
      | Sys_error msg ->
        Printf.eprintf "%s\n%!" msg;
        exit 2
    in
    let b = load baseline and c = load current in
    match Report.diff ~tolerance ~baseline:b ~current:c () with
    | [] ->
      Printf.printf "bench-compare: %d row(s) match (tolerance %g)\n%!"
        (List.length b) tolerance
    | drifts ->
      List.iter
        (fun d -> Printf.printf "drift: %s\n" (Report.drift_to_string d))
        drifts;
      Printf.printf "bench-compare: %d drift(s) across %d baseline row(s)\n%!"
        (List.length drifts) (List.length b);
      exit 4
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two canonical JSON result files; exit non-zero on any drift \
          (the CI bench-regression gate)")
    Term.(const run $ baseline $ current $ tolerance)

(* --- trajectory: append-only perf history + one-sided regression gate --- *)

(* BENCH_trajectory.json is a canonical Report document accumulated across
   PRs: every [append] adds one entry (a row per *_perf case carrying
   events_per_sec and sim_cycles_per_wall_second), and [check] diffs the
   current perf rows against the latest entry with a one-sided tolerance —
   wall-clock noise within the band and improvements of any size pass. *)

let traj_perf_cases rows =
  List.filter_map
    (fun (r : Report.row) ->
      match List.assoc_opt "case" r.Report.axis with
      | Some case
        when String.length case > 5
             && String.sub case (String.length case - 5) 5 = "_perf" -> (
        match
          (Report.metric r "events_per_sec", Report.metric r "sim_cycles_per_sec")
        with
        | Some eps, Some cps -> Some (case, r.Report.system, eps, cps)
        | _ -> None)
      | _ -> None)
    rows

let traj_row ?entry (case, system, eps, cps) =
  let axis =
    ("case", case)
    :: (match entry with None -> [] | Some n -> [ ("entry", Printf.sprintf "%04d" n) ])
  in
  Report.row ~experiment:"trajectory" ~system ~axis
    [ ("events_per_sec", eps); ("sim_cycles_per_wall_second", cps) ]

let traj_entries rows =
  List.filter_map
    (fun (r : Report.row) ->
      match List.assoc_opt "entry" r.Report.axis with
      | Some e -> int_of_string_opt e
      | None -> None)
    rows

let trajectory_cmd =
  let action =
    Arg.(required & pos 0 (some (enum [ ("append", `Append); ("check", `Check) ])) None
         & info [] ~docv:"ACTION"
             ~doc:"$(b,append) records the current perf rows as a new \
                   entry; $(b,check) gates them against the latest entry.")
  in
  let file =
    Arg.(value & opt string "BENCH_trajectory.json"
         & info [ "file" ] ~docv:"FILE"
             ~doc:"Append-only trajectory document (committed to the repo).")
  in
  let perf =
    Arg.(required & opt (some file) None
         & info [ "perf" ] ~docv:"FILE"
             ~doc:"Current perf rows: bench/main.exe engine-micro \
                   --perf-json output.")
  in
  let tolerance =
    Arg.(value & opt float 0.25
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:"Allowed one-sided wall-clock regression; improvements \
                   always pass.")
  in
  let run action file perf tolerance =
    let load path =
      try Report.read_file path
      with
      | Report.Parse_error msg ->
        Printf.eprintf "%s: parse error: %s\n%!" path msg;
        exit 2
      | Sys_error msg ->
        Printf.eprintf "%s\n%!" msg;
        exit 2
    in
    let cases = traj_perf_cases (load perf) in
    if cases = [] then begin
      Printf.eprintf "trajectory: no *_perf rows in %s\n%!" perf;
      exit 2
    end;
    let history = if Sys.file_exists file then load file else [] in
    let last = List.fold_left max (-1) (traj_entries history) in
    match action with
    | `Append ->
      let entry = last + 1 in
      let rows = history @ List.map (traj_row ~entry) cases in
      Report.write_file file rows;
      Printf.printf "trajectory: entry %04d (%d case(s)) -> %s\n%!" entry
        (List.length cases) file
    | `Check ->
      if last < 0 then begin
        Printf.printf
          "trajectory: %s has no entries yet; nothing to gate against\n%!" file;
        exit 0
      end;
      let baseline =
        List.filter_map
          (fun (r : Report.row) ->
            if List.assoc_opt "entry" r.Report.axis
               = Some (Printf.sprintf "%04d" last)
            then
              Some
                (Report.row ~experiment:"trajectory" ~system:r.Report.system
                   ~axis:(List.remove_assoc "entry" r.Report.axis)
                   r.Report.metrics)
            else None)
          history
      in
      let current = List.map (fun c -> traj_row c) cases in
      (match Report.diff ~one_sided:true ~tolerance ~baseline ~current () with
      | [] ->
        Printf.printf
          "trajectory: current perf within %.0f%% of entry %04d (%d case(s))\n%!"
          (100.0 *. tolerance) last (List.length baseline)
      | drifts ->
        List.iter
          (fun d -> Printf.printf "regression: %s\n" (Report.drift_to_string d))
          drifts;
        Printf.printf
          "trajectory: %d regression(s) vs entry %04d (tolerance %.0f%%)\n%!"
          (List.length drifts) last (100.0 *. tolerance);
        exit 4)
  in
  Cmd.v
    (Cmd.info "trajectory"
       ~doc:
         "Append-only perf history: record bench wall-clock rates per PR \
          and fail on a >tolerance one-sided regression (the CI \
          perf-trajectory gate, separate from the bit-exact gate)")
    Term.(const run $ action $ file $ perf $ tolerance)

(* --- serve: one ad-hoc measurement (simulated or native) --- *)

(* Explicit name validation (instead of Arg.enum) so an unknown system or
   backend exits non-zero with a one-line diagnostic naming the
   alternatives, rather than cmdliner's generic usage dump. *)
let parse_system s =
  match String.lowercase_ascii s with
  | "mutps" | "utps" -> Some Harness.Mutps
  | "basekv" -> Some Harness.Basekv
  | "erpckv" -> Some Harness.Erpckv
  | _ -> None

let system_or_die s =
  match parse_system s with
  | Some sys -> sys
  | None ->
    Printf.eprintf
      "serve: unknown system '%s' (expected mutps, basekv, or erpckv)\n%!" s;
    exit 1

let backend_or_die s =
  match String.lowercase_ascii s with
  | "sim" -> `Sim
  | "native" -> `Native
  | _ ->
    Printf.eprintf "serve: unknown backend '%s' (expected sim or native)\n%!" s;
    exit 1

let host_port_or_die ~what s =
  match String.rindex_opt s ':' with
  | None ->
    Printf.eprintf "%s: expected HOST:PORT, got '%s'\n%!" what s;
    exit 1
  | Some i -> (
    let host = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port > 0 && port < 65536 -> (host, port)
    | _ ->
      Printf.eprintf "%s: bad port in '%s'\n%!" what s;
      exit 1)

let listen_of ~what ~unix_path ~tcp =
  match tcp with
  | Some hp ->
    let host, port = host_port_or_die ~what hp in
    Mutps_native.Server.Tcp (host, port)
  | None -> Mutps_native.Server.Unix_path unix_path

(* Native-server knobs, shared between serve and loadgen where sensible. *)
let native_term =
  let listen =
    Arg.(value & opt string "/tmp/mutps.sock"
         & info [ "listen" ] ~docv:"PATH"
             ~doc:"Unix-domain socket path (native backend).")
  in
  let listen_tcp =
    Arg.(value & opt (some string) None
         & info [ "listen-tcp" ] ~docv:"HOST:PORT"
             ~doc:"Listen on TCP instead of a Unix socket (native backend).")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
             ~doc:"Scheduler worker domains (native backend); 0 picks a \
                   count matched to the machine's cores.")
  in
  let shards =
    Arg.(value & opt int 2
         & info [ "shards" ] ~docv:"N"
             ~doc:"Share-nothing backend shards (native backend).")
  in
  let duration_s =
    Arg.(value & opt (some float) None
         & info [ "duration-s" ] ~docv:"SECONDS"
             ~doc:"Stop the native server after this long (default: serve \
                   until killed).")
  in
  let hot_cap =
    Arg.(value & opt int 1024
         & info [ "hot-cap" ] ~docv:"N"
             ~doc:"CR hot-cache capacity per shard (native uTPS split).")
  in
  let combine listen listen_tcp domains shards duration_s hot_cap =
    (listen, listen_tcp, domains, shards, duration_s, hot_cap)
  in
  Term.(
    const combine $ listen $ listen_tcp $ domains $ shards $ duration_s
    $ hot_cap)

let serve_native scale system value_size
    (listen, listen_tcp, domains, shards, duration_s, hot_cap) =
  let module Server = Mutps_native.Server in
  let mode =
    match system with
    | Harness.Mutps -> Server.Split
    | Harness.Basekv -> Server.Rtc_pool Mutps_kvs.Exec.Locked
    | Harness.Erpckv -> Server.Rtc_pool Mutps_kvs.Exec.Exclusive
  in
  let domains =
    if domains > 0 then domains
    else max 1 (min 3 (Domain.recommended_domain_count ()))
  in
  let cfg =
    {
      Server.mode;
      listen = listen_of ~what:"serve" ~unix_path:listen ~tcp:listen_tcp;
      domains;
      shards;
      keyspace = scale.Harness.keyspace;
      value_size;
      hot_cap;
      duration_s;
      (* through the Harness sink: on this control domain it reaches
         stdout directly, while a capturing runner sees it in-buffer *)
      log = (fun s -> Harness.printf "%s\n" s);
    }
  in
  let s = Server.run cfg in
  Harness.printf
    "native %s done: %d responded (%d CR hits, %d forwarded, %d MR ops), \
     %d conns, %d steals\n"
    (Harness.system_name system) s.Server.responded s.Server.cr_hits
    s.Server.forwarded s.Server.mr_ops s.Server.conns s.Server.steals

let serve_cmd =
  let system =
    Arg.(value & opt string "mutps"
         & info [ "system" ] ~doc:"System to run: mutps, basekv, or erpckv.")
  in
  let backend =
    Arg.(value & opt string "sim"
         & info [ "backend" ]
             ~doc:"$(b,sim) runs one simulated measurement; $(b,native) \
                   serves the RESP-like protocol on a real socket with the \
                   effect-fiber runtime.")
  in
  let index =
    let index_conv =
      Arg.enum [ ("tree", Mutps_kvs.Config.Tree); ("hash", Mutps_kvs.Config.Hash) ]
    in
    Arg.(value & opt index_conv Mutps_kvs.Config.Tree & info [ "index" ] ~doc:"Index structure.")
  in
  let value_size =
    Arg.(value & opt int 64 & info [ "value-size" ] ~doc:"Value bytes.")
  in
  let theta =
    Arg.(value & opt float 0.99 & info [ "theta" ] ~doc:"Zipfian theta (0 = uniform).")
  in
  let get_ratio =
    Arg.(value & opt float 0.5 & info [ "get-ratio" ] ~doc:"Fraction of gets.")
  in
  let dlb =
    Arg.(value & flag & info [ "dlb" ] ~doc:"Offload the CR-MR queue to a DLB-style hardware queue (uTPS only).")
  in
  let run scale sanitize obs system backend native index value_size theta
      get_ratio dlb =
    let system = system_or_die system in
    match backend_or_die backend with
    | `Native -> serve_native scale system value_size native
    | `Sim ->
    with_sanitizer sanitize @@ fun () ->
    with_observability obs @@ fun () ->
    let spec =
      {
        Mutps_workload.Opgen.name = "custom";
        keyspace = scale.Harness.keyspace;
        key_dist =
          (if theta < 0.01 then Mutps_workload.Opgen.Uniform
           else Mutps_workload.Opgen.Zipfian theta);
        size_dist = Mutps_workload.Opgen.Fixed value_size;
        mix = { Mutps_workload.Opgen.get = get_ratio; put = 1.0 -. get_ratio; scan = 0.0 };
        scan_len = 1;
      }
    in
    let tweak c = { c with Mutps_kvs.Config.dlb } in
    let m = Harness.measure ~index ~tweak system scale spec in
    Printf.printf
      "%s (%s index): %.2f Mops, P50 %.2f us, P99 %.2f us, %d ops, CR hit rate %.1f%%\n"
      (Harness.system_name system)
      (match index with Mutps_kvs.Config.Tree -> "tree" | Mutps_kvs.Config.Hash -> "hash")
      m.Harness.mops m.Harness.p50_us m.Harness.p99_us m.Harness.completed
      (100.0 *. m.Harness.cr_hit_rate)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one system under a custom workload (simulated), or serve it \
          for real over a socket ($(b,--backend native))")
    Term.(
      const run $ scale_term $ sanitize_term $ obs_term $ system $ backend
      $ native_term $ index $ value_size $ theta $ get_ratio $ dlb)

(* --- loadgen: closed-loop client for the native server --- *)

let loadgen_cmd =
  let connect =
    Arg.(value & opt string "/tmp/mutps.sock"
         & info [ "connect" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of the native server.")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"Connect over TCP instead of a Unix socket.")
  in
  let conns =
    Arg.(value & opt int 8
         & info [ "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let ops =
    Arg.(value & opt int 100_000
         & info [ "ops" ] ~docv:"N" ~doc:"Total operations to complete.")
  in
  let keyspace =
    Arg.(value & opt int 10_000
         & info [ "keyspace" ] ~docv:"N" ~doc:"Keys drawn from [0, N).")
  in
  let value_size =
    Arg.(value & opt int 64 & info [ "value-size" ] ~doc:"Put value bytes.")
  in
  let theta =
    Arg.(value & opt float 0.99
         & info [ "theta" ] ~doc:"Zipfian theta (0 = uniform).")
  in
  let get_ratio =
    Arg.(value & opt float 0.9 & info [ "get-ratio" ] ~doc:"Fraction of gets.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Op-stream seed.")
  in
  let run connect tcp conns ops keyspace value_size theta get_ratio seed =
    let module Loadgen = Mutps_native.Loadgen in
    let spec =
      {
        Mutps_workload.Opgen.name = "loadgen";
        keyspace;
        key_dist =
          (if theta < 0.01 then Mutps_workload.Opgen.Uniform
           else Mutps_workload.Opgen.Zipfian theta);
        size_dist = Mutps_workload.Opgen.Fixed value_size;
        mix =
          { Mutps_workload.Opgen.get = get_ratio;
            put = 1.0 -. get_ratio;
            scan = 0.0 };
        scan_len = 1;
      }
    in
    let cfg =
      {
        Loadgen.connect =
          listen_of ~what:"loadgen" ~unix_path:connect ~tcp;
        conns;
        ops;
        spec;
        seed;
      }
    in
    match Loadgen.run cfg with
    | r ->
      let gets = r.Loadgen.get_hits + r.Loadgen.get_misses in
      Printf.printf
        "loadgen: %d ops in %.3f s = %.0f ops/s, P50 %.1f us, P99 %.1f us, \
         %d errors, GET hit rate %.1f%%\n%!"
        r.Loadgen.completed
        (float_of_int r.Loadgen.elapsed_ns /. 1e9)
        (Loadgen.ops_per_s r)
        (Loadgen.percentile_us r 50.0)
        (Loadgen.percentile_us r 99.0)
        r.Loadgen.errors
        (100.0 *. float_of_int r.Loadgen.get_hits
        /. float_of_int (max 1 gets));
      if r.Loadgen.errors > 0 then exit 5
    | exception Loadgen.Protocol_error msg ->
      Printf.eprintf "loadgen: protocol error: %s\n%!" msg;
      exit 5
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "loadgen: %s(%s): %s\n%!" fn arg (Unix.error_message e);
      exit 5
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running native server with closed-loop connections")
    Term.(
      const run $ connect $ tcp $ conns $ ops $ keyspace $ value_size $ theta
      $ get_ratio $ seed)

let () =
  let info =
    Cmd.info "mutps-cli" ~version:"1.0.0"
      ~doc:"uTPS reproduction: simulated in-memory KVS experiments"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; serve_cmd; loadgen_cmd; bench_compare_cmd;
            trajectory_cmd;
          ]))
